//! A block device backed by a real file.
//!
//! [`FileDevice`] stores pages densely in a single file using positioned
//! (`pread`/`pwrite`-style) IO, so no seek state leaks between the read and
//! write streams and the device can be dropped and reopened: everything an
//! index wrote — including the metadata footer written by
//! [`crate::meta::write_footer`] — survives on disk. Buffering is the
//! [`Pager`](crate::Pager)'s job (its LRU pool fronts every backend), so the
//! device itself issues one full-page IO per access; that keeps the counted
//! IO identical to [`SimDevice`](crate::SimDevice) while the OS page cache
//! provides the usual second-level buffering for free.
//!
//! Writes always cover a full page (short data is zero-padded), so the file
//! length is a page multiple and pages never alias each other's tails.
//! Pages that were allocated but never written read back as zeros, exactly
//! like the simulator.

use crate::device::{check_page, check_page_size, pread_at, pwrite_at, BlockDevice, PageId};
use crate::iostats::{IoStats, IoTracker};
use reach_core::IndexError;
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};

/// File-backed block device with the paper's IO accounting.
#[derive(Debug)]
pub struct FileDevice {
    file: File,
    path: PathBuf,
    page_size: usize,
    len_pages: u64,
    /// Reusable page-sized staging buffer for zero-padded writes.
    scratch: Vec<u8>,
    tracker: IoTracker,
}

impl FileDevice {
    /// Creates (or truncates) the file at `path` as an empty device.
    pub fn create(path: impl AsRef<Path>, page_size: usize) -> Result<Self, IndexError> {
        check_page_size(page_size);
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| IndexError::io(&format!("create {}", path.display()), &e))?;
        Ok(Self {
            file,
            path,
            page_size,
            len_pages: 0,
            scratch: vec![0u8; page_size],
            tracker: IoTracker::new(),
        })
    }

    /// Opens an existing device file. The caller supplies the page size the
    /// file was written with (indexes validate it again against their
    /// on-device metadata footer).
    pub fn open(path: impl AsRef<Path>, page_size: usize) -> Result<Self, IndexError> {
        check_page_size(page_size);
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| IndexError::io(&format!("open {}", path.display()), &e))?;
        let len = file
            .metadata()
            .map_err(|e| IndexError::io(&format!("stat {}", path.display()), &e))?
            .len();
        if len % page_size as u64 != 0 {
            return Err(IndexError::Corrupt(format!(
                "{}: file length {len} is not a multiple of page size {page_size}",
                path.display()
            )));
        }
        Ok(Self {
            file,
            path,
            page_size,
            len_pages: len / page_size as u64,
            scratch: vec![0u8; page_size],
            tracker: IoTracker::new(),
        })
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl BlockDevice for FileDevice {
    fn backend(&self) -> &'static str {
        "file"
    }

    fn page_size(&self) -> usize {
        self.page_size
    }

    fn len_pages(&self) -> u64 {
        self.len_pages
    }

    fn allocate(&mut self, n: usize) -> Result<PageId, IndexError> {
        // Extend the file immediately (a cheap metadata-only ftruncate on
        // sparse filesystems) so allocated-but-never-written trailing pages
        // survive a drop-and-reopen cycle exactly like the simulator's.
        let first = self.len_pages;
        let new_len = self.len_pages + n as u64;
        self.file
            .set_len(new_len * self.page_size as u64)
            .map_err(|e| IndexError::io(&format!("extend {}", self.path.display()), &e))?;
        self.len_pages = new_len;
        Ok(first)
    }

    fn write_page(&mut self, id: PageId, data: &[u8]) -> Result<(), IndexError> {
        assert!(
            data.len() <= self.page_size,
            "write of {} bytes exceeds page size {}",
            data.len(),
            self.page_size
        );
        check_page(id, self.len_pages)?;
        self.scratch[..data.len()].copy_from_slice(data);
        self.scratch[data.len()..].fill(0);
        let off = id * self.page_size as u64;
        pwrite_at(&mut self.file, off, &self.scratch).map_err(|e| {
            IndexError::io(&format!("write page {id} of {}", self.path.display()), &e)
        })?;
        self.tracker.note_write(id);
        Ok(())
    }

    fn read_page_into(&mut self, id: PageId, buf: &mut [u8]) -> Result<(), IndexError> {
        assert_eq!(buf.len(), self.page_size, "buffer must be one page long");
        check_page(id, self.len_pages)?;
        let off = id * self.page_size as u64;
        pread_at(&mut self.file, off, buf).map_err(|e| {
            IndexError::io(&format!("read page {id} of {}", self.path.display()), &e)
        })?;
        self.tracker.note_read(id);
        Ok(())
    }

    fn stats(&self) -> IoStats {
        self.tracker.stats()
    }

    fn reset_stats(&mut self) {
        self.tracker.reset();
    }

    fn break_sequence(&mut self) {
        self.tracker.break_sequence();
    }

    fn note_cache_hit(&mut self) {
        self.tracker.note_cache_hit();
    }

    fn note_prefetched(&mut self) {
        self.tracker.note_prefetched();
    }

    fn note_prefetch_hit(&mut self) {
        self.tracker.note_prefetch_hit();
    }

    fn sync(&mut self) -> Result<(), IndexError> {
        self.file
            .sync_all()
            .map_err(|e| IndexError::io(&format!("sync {}", self.path.display()), &e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "streach-filedev-{}-{tag}.pages",
            std::process::id()
        ));
        p
    }

    #[test]
    fn roundtrips_and_matches_sim_accounting() {
        let path = temp_path("roundtrip");
        let mut d = FileDevice::create(&path, 128).unwrap();
        let p = d.allocate(3).unwrap();
        d.write_page(p, b"hello").unwrap();
        d.write_page(p + 1, b"world").unwrap();
        let mut buf = vec![0u8; 128];
        d.read_page_into(p, &mut buf).unwrap();
        assert_eq!(&buf[..5], b"hello");
        assert!(buf[5..].iter().all(|&b| b == 0));
        d.read_page_into(p + 1, &mut buf).unwrap();
        assert_eq!(&buf[..5], b"world");
        // Never-written page reads back zeroed.
        d.read_page_into(p + 2, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        let s = d.stats();
        assert_eq!(s.random_writes, 1);
        assert_eq!(s.seq_writes, 1);
        assert_eq!(s.random_reads, 1);
        assert_eq!(s.seq_reads, 2);
        drop(d);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reopen_preserves_pages() {
        let path = temp_path("reopen");
        {
            let mut d = FileDevice::create(&path, 64).unwrap();
            let p = d.allocate(2).unwrap();
            d.write_page(p, b"persist").unwrap();
            d.write_page(p + 1, b"me").unwrap();
            d.sync().unwrap();
        }
        let mut d = FileDevice::open(&path, 64).unwrap();
        assert_eq!(d.len_pages(), 2);
        let mut buf = vec![0u8; 64];
        d.read_page_into(0, &mut buf).unwrap();
        assert_eq!(&buf[..7], b"persist");
        d.read_page_into(1, &mut buf).unwrap();
        assert_eq!(&buf[..2], b"me");
        drop(d);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn allocated_but_unwritten_pages_survive_reopen() {
        // Regression: `allocate` must extend the file so a reopened device
        // sees the same page count as the simulator would.
        let path = temp_path("alloc-tail");
        {
            let mut d = FileDevice::create(&path, 64).unwrap();
            d.allocate(3).unwrap();
            d.write_page(0, b"head").unwrap();
            d.sync().unwrap();
        }
        let mut d = FileDevice::open(&path, 64).unwrap();
        assert_eq!(d.len_pages(), 3);
        let mut buf = vec![0u8; 64];
        d.read_page_into(2, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0), "trailing page reads as zeros");
        drop(d);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_rejects_misaligned_files() {
        let path = temp_path("misaligned");
        std::fs::write(&path, vec![0u8; 100]).unwrap();
        assert!(matches!(
            FileDevice::open(&path, 64),
            Err(IndexError::Corrupt(_))
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn out_of_bounds_errors() {
        let path = temp_path("oob");
        let mut d = FileDevice::create(&path, 64).unwrap();
        d.allocate(1).unwrap();
        let mut buf = vec![0u8; 64];
        assert!(matches!(
            d.read_page_into(1, &mut buf),
            Err(IndexError::PageOutOfBounds { page: 1, pages: 1 })
        ));
        assert!(d.write_page(9, b"x").is_err());
        drop(d);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            FileDevice::open(temp_path("missing"), 64),
            Err(IndexError::Io(_))
        ));
    }
}
