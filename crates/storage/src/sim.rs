//! The simulated block device.
//!
//! The paper evaluates on a disk array with 4 KB pages (Table 3) and reports
//! IO counts rather than latency. [`SimDevice`] reproduces that measurement
//! model with a memory-backed page store: every access is classified as
//! *sequential* (immediately follows the previous access of its stream) or
//! *random* (everything else), matching the 20:1 normalization of §6. It is
//! the reference implementation of [`BlockDevice`] — the other backends must
//! produce byte-identical pages and identical counters.

use crate::device::{check_page, check_page_size, BlockDevice, PageId, DEFAULT_PAGE_SIZE};
use crate::iostats::{IoStats, IoTracker};
use reach_core::IndexError;

/// Memory-backed block device with IO accounting (the paper's measurement
/// model, previously named `DiskSim`).
#[derive(Debug)]
pub struct SimDevice {
    page_size: usize,
    pages: Vec<Box<[u8]>>,
    tracker: IoTracker,
}

impl SimDevice {
    /// Creates an empty device with the given page size (bytes).
    pub fn new(page_size: usize) -> Self {
        check_page_size(page_size);
        Self {
            page_size,
            pages: Vec::new(),
            tracker: IoTracker::new(),
        }
    }

    /// Creates an empty device with the paper's 4 KB pages.
    pub fn with_default_page_size() -> Self {
        Self::new(DEFAULT_PAGE_SIZE)
    }

    /// Reads a page in place (zero-copy variant of
    /// [`BlockDevice::read_page_into`]), classifying the access.
    pub fn read_page(&mut self, id: PageId) -> Result<&[u8], IndexError> {
        check_page(id, self.pages.len() as u64)?;
        self.tracker.note_read(id);
        Ok(&self.pages[id as usize])
    }
}

impl BlockDevice for SimDevice {
    fn backend(&self) -> &'static str {
        "sim"
    }

    fn page_size(&self) -> usize {
        self.page_size
    }

    fn len_pages(&self) -> u64 {
        self.pages.len() as u64
    }

    fn allocate(&mut self, n: usize) -> Result<PageId, IndexError> {
        let first = self.pages.len() as PageId;
        self.pages
            .extend((0..n).map(|_| vec![0u8; self.page_size].into_boxed_slice()));
        Ok(first)
    }

    fn write_page(&mut self, id: PageId, data: &[u8]) -> Result<(), IndexError> {
        assert!(
            data.len() <= self.page_size,
            "write of {} bytes exceeds page size {}",
            data.len(),
            self.page_size
        );
        check_page(id, self.pages.len() as u64)?;
        let page = &mut self.pages[id as usize];
        page[..data.len()].copy_from_slice(data);
        page[data.len()..].fill(0);
        self.tracker.note_write(id);
        Ok(())
    }

    fn read_page_into(&mut self, id: PageId, buf: &mut [u8]) -> Result<(), IndexError> {
        assert_eq!(buf.len(), self.page_size, "buffer must be one page long");
        let page = self.read_page(id)?;
        buf.copy_from_slice(page);
        Ok(())
    }

    fn stats(&self) -> IoStats {
        self.tracker.stats()
    }

    fn reset_stats(&mut self) {
        self.tracker.reset();
    }

    fn break_sequence(&mut self) {
        self.tracker.break_sequence();
    }

    fn note_cache_hit(&mut self) {
        self.tracker.note_cache_hit();
    }

    fn note_prefetched(&mut self) {
        self.tracker.note_prefetched();
    }

    fn note_prefetch_hit(&mut self) {
        self.tracker.note_prefetch_hit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_returns_consecutive_ranges() {
        let mut d = SimDevice::new(128);
        assert_eq!(d.allocate(3).unwrap(), 0);
        assert_eq!(d.allocate(2).unwrap(), 3);
        assert_eq!(d.len_pages(), 5);
        assert_eq!(d.size_bytes(), 5 * 128);
    }

    #[test]
    fn write_then_read_roundtrips_and_zero_fills() {
        let mut d = SimDevice::new(128);
        let p = d.allocate(1).unwrap();
        d.write_page(p, b"hello").expect("in bounds");
        let bytes = d.read_page(p).expect("in bounds");
        assert_eq!(&bytes[..5], b"hello");
        assert!(bytes[5..].iter().all(|&b| b == 0));
    }

    #[test]
    fn sequential_classification() {
        let mut d = SimDevice::new(128);
        d.allocate(10).unwrap();
        d.read_page(3).unwrap(); // random (first)
        d.read_page(4).unwrap(); // seq
        d.read_page(5).unwrap(); // seq
        d.read_page(9).unwrap(); // random (jump)
        d.read_page(8).unwrap(); // random (backwards)
        d.read_page(9).unwrap(); // seq
        let s = d.stats();
        assert_eq!(s.random_reads, 3);
        assert_eq!(s.seq_reads, 3);
    }

    #[test]
    fn break_sequence_forces_random() {
        let mut d = SimDevice::new(128);
        d.allocate(3).unwrap();
        d.read_page(0).unwrap();
        d.break_sequence();
        d.read_page(1).unwrap(); // would have been sequential
        assert_eq!(d.stats().random_reads, 2);
        assert_eq!(d.stats().seq_reads, 0);
    }

    #[test]
    fn rereading_same_page_is_random() {
        let mut d = SimDevice::new(128);
        d.allocate(1).unwrap();
        d.read_page(0).unwrap();
        d.read_page(0).unwrap();
        assert_eq!(d.stats().random_reads, 2);
    }

    #[test]
    fn out_of_bounds_errors() {
        let mut d = SimDevice::new(128);
        d.allocate(2).unwrap();
        assert!(matches!(
            d.read_page(2),
            Err(IndexError::PageOutOfBounds { page: 2, pages: 2 })
        ));
        assert!(d.write_page(5, b"x").is_err());
    }

    #[test]
    fn reset_stats_clears_and_breaks_sequence() {
        let mut d = SimDevice::new(128);
        d.allocate(3).unwrap();
        d.read_page(0).unwrap();
        d.read_page(1).unwrap();
        d.reset_stats();
        assert_eq!(d.stats(), IoStats::default());
        d.read_page(2).unwrap(); // would have been sequential before reset
        assert_eq!(d.stats().random_reads, 1);
    }

    #[test]
    fn writes_are_classified_like_reads() {
        let mut d = SimDevice::new(128);
        let p = d.allocate(3).unwrap();
        d.write_page(p, b"a").unwrap(); // random (first)
        d.write_page(p + 1, b"b").unwrap(); // seq
        d.write_page(p, b"c").unwrap(); // random (backwards)
        let s = d.stats();
        assert_eq!(s.total_writes(), 3);
        assert_eq!(s.random_writes, 2);
        assert_eq!(s.seq_writes, 1);
    }

    #[test]
    #[should_panic(expected = "exceeds page size")]
    fn oversized_write_panics() {
        let mut d = SimDevice::new(64);
        let p = d.allocate(1).unwrap();
        let _ = d.write_page(p, &[0u8; 65]);
    }
}
