//! The simulated block device.
//!
//! The paper evaluates on a disk array with 4 KB pages (Table 3) and reports
//! IO counts rather than latency. We reproduce that measurement model with a
//! memory-backed page store that classifies every read as *sequential*
//! (immediately follows the previous read) or *random* (everything else),
//! matching the 20:1 normalization of §6.

use crate::iostats::IoStats;
use reach_core::IndexError;

/// Default page size, matching the paper's experimental system (Table 3).
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// A page address on a [`DiskSim`].
pub type PageId = u64;

/// Memory-backed block device with IO accounting.
///
/// Pages are fixed-size and allocated append-only (index construction in
/// this workspace always lays data out explicitly, so a free list is
/// unnecessary).
#[derive(Debug)]
pub struct DiskSim {
    page_size: usize,
    pages: Vec<Box<[u8]>>,
    stats: IoStats,
    last_read: Option<PageId>,
}

impl DiskSim {
    /// Creates an empty device with the given page size (bytes).
    pub fn new(page_size: usize) -> Self {
        assert!(page_size >= 64, "page size {page_size} unreasonably small");
        Self {
            page_size,
            pages: Vec::new(),
            stats: IoStats::default(),
            last_read: None,
        }
    }

    /// Creates an empty device with the paper's 4 KB pages.
    pub fn with_default_page_size() -> Self {
        Self::new(DEFAULT_PAGE_SIZE)
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of allocated pages.
    pub fn len_pages(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Device size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.len_pages() * self.page_size as u64
    }

    /// Allocates `n` zeroed pages and returns the id of the first.
    pub fn allocate(&mut self, n: usize) -> PageId {
        let first = self.pages.len() as PageId;
        self.pages
            .extend((0..n).map(|_| vec![0u8; self.page_size].into_boxed_slice()));
        first
    }

    /// Overwrites a page. `data` must be at most one page long; shorter data
    /// leaves the page tail zeroed. Counts one write IO.
    pub fn write_page(&mut self, id: PageId, data: &[u8]) -> Result<(), IndexError> {
        assert!(
            data.len() <= self.page_size,
            "write of {} bytes exceeds page size {}",
            data.len(),
            self.page_size
        );
        let pages = self.pages.len() as u64;
        let page = self
            .pages
            .get_mut(id as usize)
            .ok_or(IndexError::PageOutOfBounds { page: id, pages })?;
        page[..data.len()].copy_from_slice(data);
        page[data.len()..].fill(0);
        self.stats.writes += 1;
        Ok(())
    }

    /// Reads a page, classifying the access as sequential or random.
    pub fn read_page(&mut self, id: PageId) -> Result<&[u8], IndexError> {
        let pages = self.pages.len() as u64;
        let page = self
            .pages
            .get(id as usize)
            .ok_or(IndexError::PageOutOfBounds { page: id, pages })?;
        if self.last_read.map(|p| p + 1) == Some(id) {
            self.stats.seq_reads += 1;
        } else {
            self.stats.random_reads += 1;
        }
        self.last_read = Some(id);
        Ok(page)
    }

    /// Mutable access for in-place construction without read accounting.
    /// Only index *builders* use this; query paths must go through
    /// [`DiskSim::read_page`] (or the pager).
    pub fn page_mut_for_build(&mut self, id: PageId) -> Result<&mut [u8], IndexError> {
        let pages = self.pages.len() as u64;
        self.pages
            .get_mut(id as usize)
            .map(|p| &mut p[..])
            .ok_or(IndexError::PageOutOfBounds { page: id, pages })
    }

    /// Records a construction write for a page mutated via
    /// [`DiskSim::page_mut_for_build`].
    pub fn note_build_write(&mut self) {
        self.stats.writes += 1;
    }

    /// Cumulative counters.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Adds to the cache-hit counter (called by the pager).
    pub(crate) fn note_cache_hit(&mut self) {
        self.stats.cache_hits += 1;
    }

    /// Resets counters (e.g. between construction and query phases) and
    /// forgets the head position so the next read is random.
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
        self.last_read = None;
    }

    /// Forgets the head position (forces the next read to count as random)
    /// without clearing counters. Used to model an interleaving access
    /// stream boundary.
    pub fn break_sequence(&mut self) {
        self.last_read = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_returns_consecutive_ranges() {
        let mut d = DiskSim::new(128);
        assert_eq!(d.allocate(3), 0);
        assert_eq!(d.allocate(2), 3);
        assert_eq!(d.len_pages(), 5);
        assert_eq!(d.size_bytes(), 5 * 128);
    }

    #[test]
    fn write_then_read_roundtrips_and_zero_fills() {
        let mut d = DiskSim::new(128);
        let p = d.allocate(1);
        d.write_page(p, b"hello").expect("in bounds");
        let bytes = d.read_page(p).expect("in bounds");
        assert_eq!(&bytes[..5], b"hello");
        assert!(bytes[5..].iter().all(|&b| b == 0));
    }

    #[test]
    fn sequential_classification() {
        let mut d = DiskSim::new(128);
        d.allocate(10);
        d.read_page(3).unwrap(); // random (first)
        d.read_page(4).unwrap(); // seq
        d.read_page(5).unwrap(); // seq
        d.read_page(9).unwrap(); // random (jump)
        d.read_page(8).unwrap(); // random (backwards)
        d.read_page(9).unwrap(); // seq
        let s = d.stats();
        assert_eq!(s.random_reads, 3);
        assert_eq!(s.seq_reads, 3);
    }

    #[test]
    fn break_sequence_forces_random() {
        let mut d = DiskSim::new(128);
        d.allocate(3);
        d.read_page(0).unwrap();
        d.break_sequence();
        d.read_page(1).unwrap(); // would have been sequential
        assert_eq!(d.stats().random_reads, 2);
        assert_eq!(d.stats().seq_reads, 0);
    }

    #[test]
    fn rereading_same_page_is_random() {
        let mut d = DiskSim::new(128);
        d.allocate(1);
        d.read_page(0).unwrap();
        d.read_page(0).unwrap();
        assert_eq!(d.stats().random_reads, 2);
    }

    #[test]
    fn out_of_bounds_errors() {
        let mut d = DiskSim::new(128);
        d.allocate(2);
        assert!(matches!(
            d.read_page(2),
            Err(IndexError::PageOutOfBounds { page: 2, pages: 2 })
        ));
        assert!(d.write_page(5, b"x").is_err());
    }

    #[test]
    fn reset_stats_clears_and_breaks_sequence() {
        let mut d = DiskSim::new(128);
        d.allocate(3);
        d.read_page(0).unwrap();
        d.read_page(1).unwrap();
        d.reset_stats();
        assert_eq!(d.stats(), IoStats::default());
        d.read_page(2).unwrap(); // would have been sequential before reset
        assert_eq!(d.stats().random_reads, 1);
    }

    #[test]
    fn writes_are_counted() {
        let mut d = DiskSim::new(128);
        let p = d.allocate(2);
        d.write_page(p, b"a").unwrap();
        d.write_page(p + 1, b"b").unwrap();
        assert_eq!(d.stats().writes, 2);
    }

    #[test]
    #[should_panic(expected = "exceeds page size")]
    fn oversized_write_panics() {
        let mut d = DiskSim::new(64);
        let p = d.allocate(1);
        let _ = d.write_page(p, &[0u8; 65]);
    }
}
