//! IO accounting in the paper's cost model.
//!
//! The paper measures query cost as the number of random IOs, normalizing
//! sequential accesses at a 20:1 ratio (§6): *"the sequential IOs are
//! normalized to random accesses by assuming that each random access costs
//! as much as 20 sequential accesses"*.
//!
//! Writes are classified the same way (an append-only construction sweep is
//! one seek plus sequential page writes; re-visiting a directory page is a
//! seek), so index-construction cost is reported in the same normalized
//! currency as query cost. Reads and writes track separate head positions:
//! the build phase issues no reads and the query phase no writes, so the
//! streams never contend for one head in practice, and keeping them apart
//! makes construction cost independent of interleaved metadata reads.

use crate::device::PageId;
use reach_core::SEQ_PER_RANDOM;
use std::ops::{Add, Sub};

/// Cumulative IO counters of a block device.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct IoStats {
    /// Page reads that required a seek (the previous read was not the
    /// immediately preceding page).
    pub random_reads: u64,
    /// Page reads that continued a consecutive forward scan.
    pub seq_reads: u64,
    /// Page writes that required a seek.
    pub random_writes: u64,
    /// Page writes that continued a consecutive forward scan.
    pub seq_writes: u64,
    /// Reads served from the buffer pool without touching the device.
    pub cache_hits: u64,
    /// Pages this handle filled by readahead prefetch (each is also counted
    /// as a classified device read above — prefetch batches the fetch, it
    /// never changes what the device is charged).
    pub prefetched: u64,
    /// The subset of [`IoStats::cache_hits`] that landed on a
    /// readahead-prefetched page (its first demand access).
    pub prefetch_hits: u64,
}

impl IoStats {
    /// Total device page reads (random + sequential, excluding cache hits).
    pub fn total_reads(&self) -> u64 {
        self.random_reads + self.seq_reads
    }

    /// Total device page writes (random + sequential).
    pub fn total_writes(&self) -> u64 {
        self.random_writes + self.seq_writes
    }

    /// Normalized read count `random + seq/20` — the paper's reported
    /// query-cost metric.
    pub fn normalized(&self) -> f64 {
        self.random_reads as f64 + self.seq_reads as f64 / SEQ_PER_RANDOM as f64
    }

    /// Normalized write count `random + seq/20` (construction cost in the
    /// same currency as [`IoStats::normalized`]).
    pub fn normalized_writes(&self) -> f64 {
        self.random_writes as f64 + self.seq_writes as f64 / SEQ_PER_RANDOM as f64
    }

    /// Fraction of page requests (device reads + cache hits) served from
    /// cache; 0 when nothing was read at all.
    pub fn cache_hit_rate(&self) -> f64 {
        let requests = self.total_reads() + self.cache_hits;
        if requests == 0 {
            0.0
        } else {
            self.cache_hits as f64 / requests as f64
        }
    }

    /// Human-readable one-liner surfacing both the read and the write
    /// classification plus cache hits (with their hit rate) and prefetch
    /// activity.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "reads {} random + {} seq (norm {:.2}), writes {} random + {} seq (norm {:.2}), {} cache hits ({:.1}% hit rate)",
            self.random_reads,
            self.seq_reads,
            self.normalized(),
            self.random_writes,
            self.seq_writes,
            self.normalized_writes(),
            self.cache_hits,
            self.cache_hit_rate() * 100.0,
        );
        if self.prefetched > 0 || self.prefetch_hits > 0 {
            s.push_str(&format!(
                ", {} prefetched / {} prefetch hits",
                self.prefetched, self.prefetch_hits
            ));
        }
        s
    }

    /// Takes the accumulated counters, leaving zeros behind — the drain
    /// primitive for *owned* `IoStats` aggregates (e.g. a service handing
    /// off its per-phase totals to a reporter and starting fresh).
    ///
    /// Do **not** reach for this to attribute a live device's counters to
    /// phases: draining would have to go through the device's reset, which
    /// also wipes the head position and distorts the sequential/random
    /// classification of whatever runs next. That job belongs to
    /// [`IoSampler`], which diffs snapshots without ever resetting.
    pub fn take(&mut self) -> IoStats {
        std::mem::take(self)
    }

    /// Counters accumulated since `earlier` (element-wise saturating
    /// difference); used to attribute IO to a single query.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            random_reads: self.random_reads.saturating_sub(earlier.random_reads),
            seq_reads: self.seq_reads.saturating_sub(earlier.seq_reads),
            random_writes: self.random_writes.saturating_sub(earlier.random_writes),
            seq_writes: self.seq_writes.saturating_sub(earlier.seq_writes),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            prefetched: self.prefetched.saturating_sub(earlier.prefetched),
            prefetch_hits: self.prefetch_hits.saturating_sub(earlier.prefetch_hits),
        }
    }
}

impl From<IoStats> for reach_obs::IoDelta {
    /// The span-local slice of these counters: trace spans attribute the
    /// classified device reads/writes and cache hits (prefetch bookkeeping
    /// stays an `IoStats`-level detail — a prefetched page is already
    /// counted as a classified read).
    fn from(s: IoStats) -> Self {
        reach_obs::IoDelta {
            random_reads: s.random_reads,
            seq_reads: s.seq_reads,
            random_writes: s.random_writes,
            seq_writes: s.seq_writes,
            cache_hits: s.cache_hits,
        }
    }
}

impl Add for IoStats {
    type Output = IoStats;
    fn add(self, rhs: IoStats) -> IoStats {
        IoStats {
            random_reads: self.random_reads + rhs.random_reads,
            seq_reads: self.seq_reads + rhs.seq_reads,
            random_writes: self.random_writes + rhs.random_writes,
            seq_writes: self.seq_writes + rhs.seq_writes,
            cache_hits: self.cache_hits + rhs.cache_hits,
            prefetched: self.prefetched + rhs.prefetched,
            prefetch_hits: self.prefetch_hits + rhs.prefetch_hits,
        }
    }
}

impl Sub for IoStats {
    type Output = IoStats;
    fn sub(self, rhs: IoStats) -> IoStats {
        self.since(&rhs)
    }
}

/// Shared IO-accounting state embedded by every
/// [`BlockDevice`](crate::BlockDevice) implementation, so the
/// sequential/random classification is identical across backends.
#[derive(Clone, Copy, Default, Debug)]
pub struct IoTracker {
    stats: IoStats,
    last_read: Option<PageId>,
    last_write: Option<PageId>,
}

impl IoTracker {
    /// Fresh tracker with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Classifies and counts one page read.
    pub fn note_read(&mut self, id: PageId) {
        if self.last_read.map(|p| p + 1) == Some(id) {
            self.stats.seq_reads += 1;
        } else {
            self.stats.random_reads += 1;
        }
        self.last_read = Some(id);
    }

    /// Classifies and counts one page write.
    pub fn note_write(&mut self, id: PageId) {
        if self.last_write.map(|p| p + 1) == Some(id) {
            self.stats.seq_writes += 1;
        } else {
            self.stats.random_writes += 1;
        }
        self.last_write = Some(id);
    }

    /// Counts one buffer-pool hit.
    pub fn note_cache_hit(&mut self) {
        self.stats.cache_hits += 1;
    }

    /// Counts one page filled by readahead prefetch (the classified device
    /// read is counted separately through [`IoTracker::note_read`]).
    pub fn note_prefetched(&mut self) {
        self.stats.prefetched += 1;
    }

    /// Counts one cache hit that landed on a prefetched page (call *in
    /// addition* to [`IoTracker::note_cache_hit`]).
    pub fn note_prefetch_hit(&mut self) {
        self.stats.prefetch_hits += 1;
    }

    /// Cumulative counters.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Clears counters and both head positions.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Forgets both head positions without clearing counters.
    pub fn break_sequence(&mut self) {
        self.last_read = None;
        self.last_write = None;
    }
}

/// Attributes a device's monotonically growing counters to *phases*.
///
/// Devices only accumulate ([`IoStats`] never shrinks while the device
/// lives), which is the right model for the paper's build/query split but
/// useless for a long-lived service that wants "IO of this query" and "IO of
/// that compaction" out of one device. An `IoSampler` remembers the counter
/// state at the previous sampling point; [`IoSampler::sample`] returns what
/// accumulated since, without ever resetting the device (resets would also
/// wipe the head position and distort the sequential/random classification
/// of whatever runs next).
#[derive(Clone, Copy, Default, Debug)]
pub struct IoSampler {
    last: IoStats,
}

impl IoSampler {
    /// A sampler whose first [`IoSampler::sample`] reports everything the
    /// device has ever counted.
    pub fn new() -> Self {
        Self::default()
    }

    /// A sampler that starts measuring at `baseline` (counters accumulated
    /// before it are attributed to no phase).
    pub fn starting_at(baseline: IoStats) -> Self {
        Self { last: baseline }
    }

    /// Counters accumulated since the previous sample (or since
    /// construction), advancing the sampling point to `current`.
    pub fn sample(&mut self, current: IoStats) -> IoStats {
        let delta = current.since(&self.last);
        self.last = current;
        delta
    }

    /// Moves the sampling point to `current` without reporting the
    /// intervening counters (e.g. to exclude a warm-up phase).
    pub fn skip_to(&mut self, current: IoStats) {
        self.last = current;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_matches_paper_ratio() {
        let s = IoStats {
            random_reads: 2,
            seq_reads: 60,
            random_writes: 1,
            seq_writes: 40,
            cache_hits: 100,
            ..IoStats::default()
        };
        assert!((s.normalized() - 5.0).abs() < 1e-12);
        assert!((s.normalized_writes() - 3.0).abs() < 1e-12);
        assert_eq!(s.total_reads(), 62);
        assert_eq!(s.total_writes(), 41);
    }

    #[test]
    fn since_is_elementwise_difference() {
        let a = IoStats {
            random_reads: 10,
            seq_reads: 20,
            random_writes: 30,
            seq_writes: 31,
            cache_hits: 40,
            prefetched: 12,
            prefetch_hits: 9,
        };
        let b = IoStats {
            random_reads: 4,
            seq_reads: 5,
            random_writes: 6,
            seq_writes: 2,
            cache_hits: 7,
            prefetched: 3,
            prefetch_hits: 1,
        };
        let d = a.since(&b);
        assert_eq!(
            d,
            IoStats {
                random_reads: 6,
                seq_reads: 15,
                random_writes: 24,
                seq_writes: 29,
                cache_hits: 33,
                prefetched: 9,
                prefetch_hits: 8,
            }
        );
        assert_eq!(a - b, d);
        assert_eq!(b + d, a);
    }

    #[test]
    fn tracker_classifies_reads_and_writes_independently() {
        let mut t = IoTracker::new();
        t.note_read(3); // random (first)
        t.note_write(3); // random (first write, independent head)
        t.note_read(4); // seq
        t.note_write(4); // seq
        t.note_read(9); // random
        t.note_write(0); // random
        let s = t.stats();
        assert_eq!(s.random_reads, 2);
        assert_eq!(s.seq_reads, 1);
        assert_eq!(s.random_writes, 2);
        assert_eq!(s.seq_writes, 1);
    }

    #[test]
    fn tracker_break_sequence_forces_random_both_ways() {
        let mut t = IoTracker::new();
        t.note_read(0);
        t.note_write(5);
        t.break_sequence();
        t.note_read(1); // would have been sequential
        t.note_write(6); // would have been sequential
        let s = t.stats();
        assert_eq!(s.seq_reads, 0);
        assert_eq!(s.seq_writes, 0);
        assert_eq!(s.random_reads, 2);
        assert_eq!(s.random_writes, 2);
    }

    #[test]
    fn take_drains_counters() {
        let mut s = IoStats {
            random_reads: 3,
            seq_reads: 4,
            random_writes: 5,
            seq_writes: 6,
            cache_hits: 7,
            ..IoStats::default()
        };
        let taken = s.take();
        assert_eq!(taken.random_reads, 3);
        assert_eq!(taken.cache_hits, 7);
        assert_eq!(s, IoStats::default());
    }

    #[test]
    fn sampler_attributes_counters_to_phases() {
        let mut t = IoTracker::new();
        let mut sampler = IoSampler::new();
        t.note_read(0);
        t.note_read(1);
        let phase1 = sampler.sample(t.stats());
        assert_eq!((phase1.random_reads, phase1.seq_reads), (1, 1));
        // Nothing happened: the next sample is empty.
        assert_eq!(sampler.sample(t.stats()), IoStats::default());
        t.note_write(9);
        t.note_read(2);
        let phase2 = sampler.sample(t.stats());
        assert_eq!(phase2.random_writes, 1);
        assert_eq!(phase2.seq_reads, 1, "head position survived sampling");
        assert_eq!(phase2.random_reads, 0);
        // The device itself was never reset.
        assert_eq!(t.stats().total_reads(), 3);
    }

    #[test]
    fn sampler_skip_to_discards_a_phase() {
        let mut t = IoTracker::new();
        t.note_read(0);
        let mut sampler = IoSampler::starting_at(t.stats());
        t.note_read(5);
        sampler.skip_to(t.stats()); // warm-up excluded
        t.note_read(9);
        let s = sampler.sample(t.stats());
        assert_eq!(s.total_reads(), 1);
    }

    #[test]
    fn summary_mentions_both_streams() {
        let mut t = IoTracker::new();
        t.note_read(0);
        t.note_write(1);
        t.note_cache_hit();
        let s = t.stats().summary();
        assert!(s.contains("reads 1 random"));
        assert!(s.contains("writes 1 random"));
        assert!(s.contains("1 cache hits"));
        assert!(s.contains("50.0% hit rate"), "{s}");
        assert!(!s.contains("prefetched"), "quiet when prefetch is idle");
    }

    #[test]
    fn summary_surfaces_prefetch_activity() {
        let mut t = IoTracker::new();
        t.note_read(0);
        t.note_prefetched();
        t.note_cache_hit();
        t.note_prefetch_hit();
        let stats = t.stats();
        assert_eq!(stats.prefetched, 1);
        assert_eq!(stats.prefetch_hits, 1);
        let s = stats.summary();
        assert!(s.contains("1 prefetched / 1 prefetch hits"), "{s}");
    }

    #[test]
    fn io_delta_conversion_carries_the_classified_counters() {
        let s = IoStats {
            random_reads: 1,
            seq_reads: 2,
            random_writes: 3,
            seq_writes: 4,
            cache_hits: 5,
            prefetched: 6,
            prefetch_hits: 7,
        };
        let d = reach_obs::IoDelta::from(s);
        assert_eq!(d.random_reads, 1);
        assert_eq!(d.seq_reads, 2);
        assert_eq!(d.random_writes, 3);
        assert_eq!(d.seq_writes, 4);
        assert_eq!(d.cache_hits, 5);
        assert_eq!(d.total_reads(), s.total_reads());
        assert_eq!(d.total_writes(), s.total_writes());
    }

    #[test]
    fn cache_hit_rate_counts_hits_against_all_requests() {
        assert_eq!(IoStats::default().cache_hit_rate(), 0.0);
        let s = IoStats {
            random_reads: 1,
            seq_reads: 2,
            cache_hits: 3,
            ..IoStats::default()
        };
        assert!((s.cache_hit_rate() - 0.5).abs() < 1e-12);
    }
}
