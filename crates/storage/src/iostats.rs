//! IO accounting in the paper's cost model.
//!
//! The paper measures query cost as the number of random IOs, normalizing
//! sequential accesses at a 20:1 ratio (§6): *"the sequential IOs are
//! normalized to random accesses by assuming that each random access costs
//! as much as 20 sequential accesses"*.

use reach_core::SEQ_PER_RANDOM;
use std::ops::{Add, Sub};

/// Cumulative IO counters of a simulated device.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct IoStats {
    /// Page reads that required a seek (the previous read was not the
    /// immediately preceding page).
    pub random_reads: u64,
    /// Page reads that continued a consecutive forward scan.
    pub seq_reads: u64,
    /// Page writes (index construction cost).
    pub writes: u64,
    /// Reads served from the buffer pool without touching the device.
    pub cache_hits: u64,
}

impl IoStats {
    /// Total device page reads (random + sequential, excluding cache hits).
    pub fn total_reads(&self) -> u64 {
        self.random_reads + self.seq_reads
    }

    /// Normalized IO count `random + seq/20` — the paper's reported metric.
    pub fn normalized(&self) -> f64 {
        self.random_reads as f64 + self.seq_reads as f64 / SEQ_PER_RANDOM as f64
    }

    /// Counters accumulated since `earlier` (element-wise saturating
    /// difference); used to attribute IO to a single query.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            random_reads: self.random_reads.saturating_sub(earlier.random_reads),
            seq_reads: self.seq_reads.saturating_sub(earlier.seq_reads),
            writes: self.writes.saturating_sub(earlier.writes),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
        }
    }
}

impl Add for IoStats {
    type Output = IoStats;
    fn add(self, rhs: IoStats) -> IoStats {
        IoStats {
            random_reads: self.random_reads + rhs.random_reads,
            seq_reads: self.seq_reads + rhs.seq_reads,
            writes: self.writes + rhs.writes,
            cache_hits: self.cache_hits + rhs.cache_hits,
        }
    }
}

impl Sub for IoStats {
    type Output = IoStats;
    fn sub(self, rhs: IoStats) -> IoStats {
        self.since(&rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_matches_paper_ratio() {
        let s = IoStats {
            random_reads: 2,
            seq_reads: 60,
            writes: 5,
            cache_hits: 100,
        };
        assert!((s.normalized() - 5.0).abs() < 1e-12);
        assert_eq!(s.total_reads(), 62);
    }

    #[test]
    fn since_is_elementwise_difference() {
        let a = IoStats {
            random_reads: 10,
            seq_reads: 20,
            writes: 30,
            cache_hits: 40,
        };
        let b = IoStats {
            random_reads: 4,
            seq_reads: 5,
            writes: 6,
            cache_hits: 7,
        };
        let d = a.since(&b);
        assert_eq!(
            d,
            IoStats {
                random_reads: 6,
                seq_reads: 15,
                writes: 24,
                cache_hits: 33,
            }
        );
        assert_eq!(a - b, d);
        assert_eq!(b + d, a);
    }
}
