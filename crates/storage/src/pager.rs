//! The pager: buffer-pool-mediated access to any [`BlockDevice`].
//!
//! Query processing in every index goes through a [`Pager`], so cache hits
//! cost nothing and misses are charged to the device with sequential/random
//! classification. Construction writes go straight to the device.
//!
//! ## Private pool vs. shared cache
//!
//! By default the pager fronts its device with a *private* [`LruPool`] —
//! the paper's per-query buffer, cleared at query boundaries so every
//! measured query starts cold. When the device advertises a shared
//! [`PageCache`] (a [`SharedDevice`](crate::shared::SharedDevice) hub
//! built `with_cache`), the pager attaches to it instead: residency is
//! then pooled across every pager on the same hub — repeated queries and
//! concurrent serving threads reuse each other's fetches. Accounting stays
//! exact either way: a hit is charged to *this* pager's device handle as a
//! cache hit ([`IoStats::cache_hits`]), never as a read, and the
//! sequential/random classification of the misses that do reach the device
//! is untouched.
//!
//! ## Readahead
//!
//! [`Pager::prefetch`] declares that a run of consecutive pages is about to
//! be scanned. With a readahead window configured
//! ([`Pager::set_readahead`], or inherited from the shared cache), the
//! pager fetches up to one window of not-yet-resident pages ahead of the
//! scan, charging each fetch as a normal classified device read plus a
//! `prefetched` mark; when the scan later lands on a prefetched page the
//! hit is counted as a `prefetch_hit` (a subset of `cache_hits`). With the
//! default window of 0 the call is a no-op, so cold-tier counters are
//! byte-identical with the feature compiled in.
//!
//! ## Why type erasure, not genericity
//!
//! The pager owns its device as `Box<dyn BlockDevice>` rather than a type
//! parameter. The trade was deliberate: backend choice is a *runtime*
//! decision (benchmarks and the [`StorageConfig`](crate::StorageConfig)
//! factory pick sim/file/mmap from configuration), which dynamic dispatch
//! serves directly, whereas `Pager<D>` would ripple a type parameter through
//! `ReachGrid`, `ReachGraph`, `GrailDisk`, `Spj`, and every function that
//! touches them — for no measurable gain, since one virtual call per *page
//! IO* is noise next to the page copy (sim/mmap) or syscall (file) it
//! fronts, and the hot cache-hit path never reaches the device at all.

use crate::buffer::LruPool;
use crate::cache::PageCache;
use crate::device::{BlockDevice, PageId};
use crate::iostats::IoStats;
use reach_core::IndexError;
use std::collections::HashSet;
use std::sync::Arc;

/// Buffer-pool-fronted page store over an erased [`BlockDevice`].
#[derive(Debug)]
pub struct Pager {
    device: Box<dyn BlockDevice>,
    pool: LruPool,
    /// Cross-query shared cache, when the device advertises one. Replaces
    /// the private pool entirely: one residency, many pagers.
    shared: Option<Arc<PageCache>>,
    /// Readahead window in pages; 0 disables prefetch.
    readahead: usize,
    /// Private-mode bookkeeping: pages the pool holds because readahead
    /// fetched them and no query access has landed on them yet. (Shared
    /// mode keeps this flag inside the cache entries instead.)
    prefetched: HashSet<PageId>,
}

impl Pager {
    /// Wraps a device with an LRU pool of `cache_pages` pages. If the
    /// device advertises a shared [`PageCache`], the pager attaches to it
    /// instead of the private pool and inherits the cache's readahead
    /// window.
    pub fn new(device: Box<dyn BlockDevice>, cache_pages: usize) -> Self {
        let shared = device.shared_cache();
        let readahead = shared.as_ref().map_or(0, |c| c.readahead());
        Self {
            device,
            pool: LruPool::new(cache_pages),
            shared,
            readahead,
            prefetched: HashSet::new(),
        }
    }

    /// Page size of the underlying device.
    pub fn page_size(&self) -> usize {
        self.device.page_size()
    }

    /// The underlying device (for construction-time allocation and writes).
    pub fn device_mut(&mut self) -> &mut dyn BlockDevice {
        self.device.as_mut()
    }

    /// The underlying device, read-only.
    pub fn device(&self) -> &dyn BlockDevice {
        self.device.as_ref()
    }

    /// Consumes the pager, returning the device.
    pub fn into_device(self) -> Box<dyn BlockDevice> {
        self.device
    }

    /// Whether this pager serves reads from a shared cross-query cache.
    pub fn is_shared(&self) -> bool {
        self.shared.is_some()
    }

    /// Current readahead window in pages (0 = prefetch disabled).
    pub fn readahead(&self) -> usize {
        self.readahead
    }

    /// Sets the readahead window in pages (0 disables prefetch).
    pub fn set_readahead(&mut self, window: usize) {
        self.readahead = window;
    }

    /// Reads a page through the pool. Hits cost nothing; misses hit the
    /// device and populate the pool.
    ///
    /// Returns an owned copy of the page: records routinely span page
    /// boundaries and callers hold several pages at once, which a borrowing
    /// API would forbid. Single-page consumers on hot paths should prefer
    /// [`Pager::with_page`], which skips this copy.
    pub fn read(&mut self, page: PageId) -> Result<Box<[u8]>, IndexError> {
        self.with_page(page, |bytes| bytes.into())
    }

    /// Zero-copy read path: runs `f` over the cached page buffer without
    /// materializing an owned copy. On a pool hit the closure borrows the
    /// resident buffer directly; on a miss the page is fetched, inserted,
    /// and borrowed in place. IO accounting is identical to [`Pager::read`].
    pub fn with_page<R>(
        &mut self,
        page: PageId,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R, IndexError> {
        if let Some(cache) = &self.shared {
            if let Some((bytes, was_prefetched)) = cache.lookup(page) {
                self.device.note_cache_hit();
                if was_prefetched {
                    self.device.note_prefetch_hit();
                }
                return Ok(f(&bytes));
            }
            let mut buf = vec![0u8; self.device.page_size()];
            self.device.read_page_into(page, &mut buf)?;
            cache.insert(page, &buf);
            return Ok(f(&buf));
        }
        if let Some(bytes) = self.pool.get(page) {
            self.device.note_cache_hit();
            if self.prefetched.remove(&page) {
                self.device.note_prefetch_hit();
            }
            return Ok(f(bytes));
        }
        self.prefetched.remove(&page);
        let mut buf = vec![0u8; self.device.page_size()];
        self.device.read_page_into(page, &mut buf)?;
        self.pool.insert(page, &buf);
        Ok(f(&buf))
    }

    /// Declares that the `count` consecutive pages starting at `start` are
    /// about to be scanned, and fetches up to one readahead window of the
    /// not-yet-resident ones into the cache ahead of the scan.
    ///
    /// Each fetched page is charged as a normal classified device read plus
    /// a `prefetched` mark; pages already resident, beyond `count`, or past
    /// the end of the device are skipped. A no-op when the readahead window
    /// is 0 (the default), which keeps cold-tier counters byte-identical.
    pub fn prefetch(&mut self, start: PageId, count: usize) -> Result<(), IndexError> {
        if self.readahead == 0 || count == 0 {
            return Ok(());
        }
        let window = count.min(self.readahead);
        let end = (start + window as u64).min(self.device.len_pages());
        let mut buf = vec![0u8; self.device.page_size()];
        for page in start..end {
            let resident = match &self.shared {
                Some(cache) => cache.contains(page),
                None => self.pool.contains(page),
            };
            if resident {
                continue;
            }
            self.device.read_page_into(page, &mut buf)?;
            self.device.note_prefetched();
            match &self.shared {
                Some(cache) => cache.insert_prefetched(page, &buf),
                None => {
                    if let Some(evicted) = self.pool.insert(page, &buf) {
                        self.prefetched.remove(&evicted);
                    }
                    self.prefetched.insert(page);
                }
            }
        }
        Ok(())
    }

    /// Whether a page is currently cached (no recency side effect).
    pub fn is_cached(&self, page: PageId) -> bool {
        match &self.shared {
            Some(cache) => cache.contains(page),
            None => self.pool.contains(page),
        }
    }

    /// Write-through page update. The cached copy — private pool or shared
    /// cache — is rewritten in place when resident, so subsequent reads see
    /// the new bytes without a device round-trip.
    pub fn write(&mut self, page: PageId, data: &[u8]) -> Result<(), IndexError> {
        self.device.write_page(page, data)?;
        let page_size = self.device.page_size();
        if let Some(cache) = &self.shared {
            // A SharedDevice hub already updated its cache inside
            // write_page; calling update again is idempotent and covers
            // devices that advertise a cache without hub write-through.
            cache.update(page, data, page_size);
        } else if self.pool.contains(page) {
            let mut padded = vec![0u8; page_size];
            padded[..data.len()].copy_from_slice(data);
            self.pool.insert(page, &padded);
            self.prefetched.remove(&page);
        }
        Ok(())
    }

    /// Drops this pager's *private* cached pages (e.g. at a query boundary,
    /// to model a cold cache, or at ReachGrid chunk boundaries which
    /// discard their buffers). A shared cache is deliberately untouched —
    /// cross-query residency surviving query boundaries is its whole point;
    /// use [`PageCache::invalidate_all`](crate::PageCache::invalidate_all)
    /// to drop it explicitly.
    pub fn clear_cache(&mut self) {
        self.pool.clear();
        self.prefetched.clear();
    }

    /// Resizes the private pool (drops current contents). No effect on a
    /// shared cache's capacity.
    pub fn set_cache_pages(&mut self, pages: usize) {
        self.pool = LruPool::new(pages);
        self.prefetched.clear();
    }

    /// Device counters.
    pub fn stats(&self) -> IoStats {
        self.device.stats()
    }

    /// Clears device counters and head position.
    pub fn reset_stats(&mut self) {
        self.device.reset_stats();
    }

    /// Marks an access-stream boundary: the next device read counts random.
    pub fn break_sequence(&mut self) {
        self.device.break_sequence();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::SharedDevice;
    use crate::sim::SimDevice;

    fn device_with_pages(n: usize) -> SimDevice {
        let mut d = SimDevice::new(128);
        let first = d.allocate(n).unwrap();
        for i in 0..n {
            d.write_page(first + i as u64, &[i as u8; 4]).unwrap();
        }
        d.reset_stats();
        d
    }

    fn pager_with_pages(n: usize, cache: usize) -> Pager {
        Pager::new(Box::new(device_with_pages(n)), cache)
    }

    fn shared_pager(n: usize, cache_pages: usize, readahead: usize) -> (Pager, Arc<PageCache>) {
        let cache = Arc::new(PageCache::new(cache_pages).with_readahead(readahead));
        let hub = SharedDevice::with_cache(Box::new(device_with_pages(n)), cache.clone());
        (Pager::new(Box::new(hub), 8), cache)
    }

    #[test]
    fn cache_hit_avoids_device_read() {
        let mut p = pager_with_pages(4, 2);
        p.read(0).unwrap();
        p.read(0).unwrap();
        let s = p.stats();
        assert_eq!(s.total_reads(), 1);
        assert_eq!(s.cache_hits, 1);
    }

    #[test]
    fn eviction_causes_reread() {
        let mut p = pager_with_pages(4, 1);
        p.read(0).unwrap();
        p.read(1).unwrap(); // evicts 0
        p.read(0).unwrap(); // miss again
        assert_eq!(p.stats().total_reads(), 3);
        assert_eq!(p.stats().cache_hits, 0);
    }

    #[test]
    fn sequential_scan_through_pager_is_sequential_on_device() {
        let mut p = pager_with_pages(5, 8);
        for i in 0..5 {
            p.read(i).unwrap();
        }
        let s = p.stats();
        assert_eq!(s.random_reads, 1);
        assert_eq!(s.seq_reads, 4);
        // Second scan is all cache hits.
        for i in 0..5 {
            p.read(i).unwrap();
        }
        assert_eq!(p.stats().total_reads(), 5);
        assert_eq!(p.stats().cache_hits, 5);
    }

    #[test]
    fn with_page_matches_read_and_charges_identically() {
        let mut a = pager_with_pages(3, 2);
        let mut b = pager_with_pages(3, 2);
        for i in [0u64, 1, 0, 2, 2] {
            let owned = a.read(i).unwrap();
            let borrowed = b.with_page(i, |bytes| bytes.to_vec()).unwrap();
            assert_eq!(&owned[..], &borrowed[..]);
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn with_page_works_with_zero_capacity_pool() {
        let mut p = pager_with_pages(2, 0);
        let first = p.with_page(0, |b| b[0]).unwrap();
        assert_eq!(first, 0);
        let second = p.with_page(1, |b| b[0]).unwrap();
        assert_eq!(second, 1);
        assert_eq!(p.stats().total_reads(), 2);
        assert_eq!(p.stats().cache_hits, 0);
    }

    #[test]
    fn write_through_updates_cached_copy_in_place() {
        let mut p = pager_with_pages(2, 2);
        assert_eq!(p.read(0).unwrap()[0], 0);
        p.write(0, &[9, 9]).unwrap();
        let s_before = p.stats();
        assert_eq!(p.read(0).unwrap()[0], 9);
        // The re-read was served from the refreshed cached copy, not the
        // device (the old code dropped the page and re-read it).
        assert_eq!(p.stats().total_reads(), s_before.total_reads());
        assert_eq!(p.stats().cache_hits, s_before.cache_hits + 1);
    }

    #[test]
    fn write_to_uncached_page_does_not_populate_the_pool() {
        let mut p = pager_with_pages(2, 2);
        p.write(1, &[7]).unwrap();
        assert!(!p.is_cached(1), "write alone must not warm the pool");
        assert_eq!(p.read(1).unwrap()[0], 7);
    }

    #[test]
    fn clear_cache_forces_misses() {
        let mut p = pager_with_pages(2, 2);
        p.read(0).unwrap();
        p.clear_cache();
        p.read(0).unwrap();
        assert_eq!(p.stats().total_reads(), 2);
    }

    #[test]
    fn out_of_bounds_propagates() {
        let mut p = pager_with_pages(1, 1);
        assert!(p.read(7).is_err());
    }

    #[test]
    fn prefetch_is_a_no_op_without_a_window() {
        let mut p = pager_with_pages(4, 4);
        p.prefetch(0, 4).unwrap();
        assert_eq!(p.stats(), IoStats::default());
        assert!(!p.is_cached(0));
    }

    #[test]
    fn private_prefetch_fills_pool_and_counts_prefetch_hits() {
        let mut p = pager_with_pages(8, 8);
        p.set_readahead(4);
        p.prefetch(0, 8).unwrap();
        let s = p.stats();
        assert_eq!(s.total_reads(), 4, "window caps the prefetch");
        assert_eq!(s.prefetched, 4);
        assert_eq!(s.random_reads, 1);
        assert_eq!(s.seq_reads, 3, "prefetch run is sequential");
        for i in 0..4 {
            assert_eq!(p.read(i).unwrap()[0], i as u8);
        }
        let s = p.stats();
        assert_eq!(s.total_reads(), 4, "scan served from pool");
        assert_eq!(s.cache_hits, 4);
        assert_eq!(s.prefetch_hits, 4);
        // A second touch of a prefetched page is a plain hit.
        p.read(0).unwrap();
        assert_eq!(p.stats().prefetch_hits, 4);
        assert_eq!(p.stats().cache_hits, 5);
    }

    #[test]
    fn prefetch_skips_resident_pages_and_clamps_to_device_end() {
        let mut p = pager_with_pages(3, 4);
        p.set_readahead(8);
        p.read(1).unwrap();
        p.prefetch(0, 8).unwrap();
        let s = p.stats();
        // Page 1 was resident; pages 0 and 2 fetched; nothing past page 2.
        assert_eq!(s.total_reads(), 3);
        assert_eq!(s.prefetched, 2);
        assert!(p.is_cached(0) && p.is_cached(2));
    }

    #[test]
    fn shared_pager_attaches_and_inherits_readahead() {
        let (p, _cache) = shared_pager(4, 4, 2);
        assert!(p.is_shared());
        assert_eq!(p.readahead(), 2);
    }

    #[test]
    fn shared_cache_hits_span_pagers() {
        let cache = Arc::new(PageCache::new(8));
        let hub = SharedDevice::with_cache(Box::new(device_with_pages(4)), cache.clone());
        let handle = hub.clone();
        let mut a = Pager::new(Box::new(hub), 8);
        let mut b = Pager::new(Box::new(handle), 8);
        assert_eq!(a.read(2).unwrap()[0], 2);
        assert_eq!(b.read(2).unwrap()[0], 2, "b reuses a's fetch");
        assert_eq!(a.stats().total_reads(), 1);
        assert_eq!(b.stats().total_reads(), 0);
        assert_eq!(b.stats().cache_hits, 1);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn shared_prefetch_hits_are_counted_once_per_page() {
        let (mut p, cache) = shared_pager(8, 8, 4);
        p.prefetch(0, 4).unwrap();
        assert_eq!(p.stats().prefetched, 4);
        for i in 0..4 {
            p.read(i).unwrap();
        }
        let s = p.stats();
        assert_eq!(s.cache_hits, 4);
        assert_eq!(s.prefetch_hits, 4);
        assert_eq!(cache.stats().prefetch_hits, 4);
        p.read(0).unwrap();
        assert_eq!(p.stats().prefetch_hits, 4, "flag cleared on first hit");
    }

    #[test]
    fn clear_cache_leaves_shared_residency_alone() {
        let (mut p, cache) = shared_pager(4, 4, 0);
        p.read(0).unwrap();
        p.clear_cache();
        assert!(p.is_cached(0), "shared residency survives query boundary");
        p.read(0).unwrap();
        assert_eq!(p.stats().total_reads(), 1);
        assert_eq!(p.stats().cache_hits, 1);
        cache.invalidate_all();
        assert!(!p.is_cached(0));
    }

    #[test]
    fn shared_write_through_is_coherent() {
        let (mut p, _cache) = shared_pager(2, 4, 0);
        assert_eq!(p.read(0).unwrap()[0], 0);
        p.write(0, &[9, 9]).unwrap();
        assert_eq!(p.read(0).unwrap()[0], 9);
        assert_eq!(p.stats().total_reads(), 1, "served from updated cache");
    }
}
