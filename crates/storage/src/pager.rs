//! The pager: buffer-pool-mediated access to any [`BlockDevice`].
//!
//! Query processing in every index goes through a [`Pager`], so cache hits
//! cost nothing and misses are charged to the device with sequential/random
//! classification. Construction writes go straight to the device.
//!
//! ## Why type erasure, not genericity
//!
//! The pager owns its device as `Box<dyn BlockDevice>` rather than a type
//! parameter. The trade was deliberate: backend choice is a *runtime*
//! decision (benchmarks and the [`StorageConfig`](crate::StorageConfig)
//! factory pick sim/file/mmap from configuration), which dynamic dispatch
//! serves directly, whereas `Pager<D>` would ripple a type parameter through
//! `ReachGrid`, `ReachGraph`, `GrailDisk`, `Spj`, and every function that
//! touches them — for no measurable gain, since one virtual call per *page
//! IO* is noise next to the page copy (sim/mmap) or syscall (file) it
//! fronts, and the hot cache-hit path never reaches the device at all.

use crate::buffer::LruPool;
use crate::device::{BlockDevice, PageId};
use crate::iostats::IoStats;
use reach_core::IndexError;

/// Buffer-pool-fronted page store over an erased [`BlockDevice`].
#[derive(Debug)]
pub struct Pager {
    device: Box<dyn BlockDevice>,
    pool: LruPool,
}

impl Pager {
    /// Wraps a device with an LRU pool of `cache_pages` pages.
    pub fn new(device: Box<dyn BlockDevice>, cache_pages: usize) -> Self {
        Self {
            device,
            pool: LruPool::new(cache_pages),
        }
    }

    /// Page size of the underlying device.
    pub fn page_size(&self) -> usize {
        self.device.page_size()
    }

    /// The underlying device (for construction-time allocation and writes).
    pub fn device_mut(&mut self) -> &mut dyn BlockDevice {
        self.device.as_mut()
    }

    /// The underlying device, read-only.
    pub fn device(&self) -> &dyn BlockDevice {
        self.device.as_ref()
    }

    /// Consumes the pager, returning the device.
    pub fn into_device(self) -> Box<dyn BlockDevice> {
        self.device
    }

    /// Reads a page through the pool. Hits cost nothing; misses hit the
    /// device and populate the pool.
    ///
    /// Returns an owned copy of the page: records routinely span page
    /// boundaries and callers hold several pages at once, which a borrowing
    /// API would forbid. Single-page consumers on hot paths should prefer
    /// [`Pager::with_page`], which skips this copy.
    pub fn read(&mut self, page: PageId) -> Result<Box<[u8]>, IndexError> {
        self.with_page(page, |bytes| bytes.into())
    }

    /// Zero-copy read path: runs `f` over the cached page buffer without
    /// materializing an owned copy. On a pool hit the closure borrows the
    /// resident buffer directly; on a miss the page is fetched, inserted,
    /// and borrowed in place. IO accounting is identical to [`Pager::read`].
    pub fn with_page<R>(
        &mut self,
        page: PageId,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R, IndexError> {
        if let Some(bytes) = self.pool.get(page) {
            self.device.note_cache_hit();
            return Ok(f(bytes));
        }
        let mut buf = vec![0u8; self.device.page_size()];
        self.device.read_page_into(page, &mut buf)?;
        self.pool.insert(page, &buf);
        Ok(f(&buf))
    }

    /// Whether a page is currently cached (no recency side effect).
    pub fn is_cached(&self, page: PageId) -> bool {
        self.pool.contains(page)
    }

    /// Write-through page update (keeps the pool coherent).
    pub fn write(&mut self, page: PageId, data: &[u8]) -> Result<(), IndexError> {
        self.device.write_page(page, data)?;
        self.pool.remove(page);
        Ok(())
    }

    /// Drops all cached pages (e.g. at a query boundary, to model a cold
    /// cache, or at ReachGrid chunk boundaries which discard their buffers).
    pub fn clear_cache(&mut self) {
        self.pool.clear();
    }

    /// Resizes the pool (drops current contents).
    pub fn set_cache_pages(&mut self, pages: usize) {
        self.pool = LruPool::new(pages);
    }

    /// Device counters.
    pub fn stats(&self) -> IoStats {
        self.device.stats()
    }

    /// Clears device counters and head position.
    pub fn reset_stats(&mut self) {
        self.device.reset_stats();
    }

    /// Marks an access-stream boundary: the next device read counts random.
    pub fn break_sequence(&mut self) {
        self.device.break_sequence();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimDevice;

    fn pager_with_pages(n: usize, cache: usize) -> Pager {
        let mut d = SimDevice::new(128);
        let first = d.allocate(n).unwrap();
        for i in 0..n {
            d.write_page(first + i as u64, &[i as u8; 4]).unwrap();
        }
        d.reset_stats();
        Pager::new(Box::new(d), cache)
    }

    #[test]
    fn cache_hit_avoids_device_read() {
        let mut p = pager_with_pages(4, 2);
        p.read(0).unwrap();
        p.read(0).unwrap();
        let s = p.stats();
        assert_eq!(s.total_reads(), 1);
        assert_eq!(s.cache_hits, 1);
    }

    #[test]
    fn eviction_causes_reread() {
        let mut p = pager_with_pages(4, 1);
        p.read(0).unwrap();
        p.read(1).unwrap(); // evicts 0
        p.read(0).unwrap(); // miss again
        assert_eq!(p.stats().total_reads(), 3);
        assert_eq!(p.stats().cache_hits, 0);
    }

    #[test]
    fn sequential_scan_through_pager_is_sequential_on_device() {
        let mut p = pager_with_pages(5, 8);
        for i in 0..5 {
            p.read(i).unwrap();
        }
        let s = p.stats();
        assert_eq!(s.random_reads, 1);
        assert_eq!(s.seq_reads, 4);
        // Second scan is all cache hits.
        for i in 0..5 {
            p.read(i).unwrap();
        }
        assert_eq!(p.stats().total_reads(), 5);
        assert_eq!(p.stats().cache_hits, 5);
    }

    #[test]
    fn with_page_matches_read_and_charges_identically() {
        let mut a = pager_with_pages(3, 2);
        let mut b = pager_with_pages(3, 2);
        for i in [0u64, 1, 0, 2, 2] {
            let owned = a.read(i).unwrap();
            let borrowed = b.with_page(i, |bytes| bytes.to_vec()).unwrap();
            assert_eq!(&owned[..], &borrowed[..]);
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn with_page_works_with_zero_capacity_pool() {
        let mut p = pager_with_pages(2, 0);
        let first = p.with_page(0, |b| b[0]).unwrap();
        assert_eq!(first, 0);
        let second = p.with_page(1, |b| b[0]).unwrap();
        assert_eq!(second, 1);
        assert_eq!(p.stats().total_reads(), 2);
        assert_eq!(p.stats().cache_hits, 0);
    }

    #[test]
    fn write_through_invalidates_cache() {
        let mut p = pager_with_pages(2, 2);
        assert_eq!(p.read(0).unwrap()[0], 0);
        p.write(0, &[9, 9]).unwrap();
        assert_eq!(p.read(0).unwrap()[0], 9);
    }

    #[test]
    fn clear_cache_forces_misses() {
        let mut p = pager_with_pages(2, 2);
        p.read(0).unwrap();
        p.clear_cache();
        p.read(0).unwrap();
        assert_eq!(p.stats().total_reads(), 2);
    }

    #[test]
    fn out_of_bounds_propagates() {
        let mut p = pager_with_pages(1, 1);
        assert!(p.read(7).is_err());
    }
}
