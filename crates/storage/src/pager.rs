//! The pager: buffer-pool-mediated access to a [`DiskSim`].
//!
//! Query processing in both indexes goes through a [`Pager`], so cache hits
//! cost nothing and misses are charged to the device with sequential/random
//! classification. Construction writes go straight to the device.

use crate::buffer::LruPool;
use crate::disk::{DiskSim, PageId};
use crate::iostats::IoStats;
use reach_core::IndexError;

/// Buffer-pool-fronted page store.
#[derive(Debug)]
pub struct Pager {
    disk: DiskSim,
    pool: LruPool,
}

impl Pager {
    /// Wraps a device with an LRU pool of `cache_pages` pages.
    pub fn new(disk: DiskSim, cache_pages: usize) -> Self {
        Self {
            disk,
            pool: LruPool::new(cache_pages),
        }
    }

    /// Page size of the underlying device.
    pub fn page_size(&self) -> usize {
        self.disk.page_size()
    }

    /// The underlying device (for construction-time allocation and writes).
    pub fn disk_mut(&mut self) -> &mut DiskSim {
        &mut self.disk
    }

    /// The underlying device, read-only.
    pub fn disk(&self) -> &DiskSim {
        &self.disk
    }

    /// Reads a page through the pool. Hits cost nothing; misses hit the
    /// device and populate the pool.
    ///
    /// Returns an owned copy of the page: records routinely span page
    /// boundaries and callers hold several pages at once, which a borrowing
    /// API would forbid.
    pub fn read(&mut self, page: PageId) -> Result<Box<[u8]>, IndexError> {
        if let Some(bytes) = self.pool.get(page) {
            let copy: Box<[u8]> = bytes.into();
            self.disk.note_cache_hit();
            return Ok(copy);
        }
        let bytes: Box<[u8]> = self.disk.read_page(page)?.into();
        self.pool.insert(page, &bytes);
        Ok(bytes)
    }

    /// Whether a page is currently cached (no recency side effect).
    pub fn is_cached(&self, page: PageId) -> bool {
        self.pool.contains(page)
    }

    /// Write-through page update (keeps the pool coherent).
    pub fn write(&mut self, page: PageId, data: &[u8]) -> Result<(), IndexError> {
        self.disk.write_page(page, data)?;
        self.pool.remove(page);
        Ok(())
    }

    /// Drops all cached pages (e.g. at a query boundary, to model a cold
    /// cache, or at ReachGrid chunk boundaries which discard their buffers).
    pub fn clear_cache(&mut self) {
        self.pool.clear();
    }

    /// Resizes the pool (drops current contents).
    pub fn set_cache_pages(&mut self, pages: usize) {
        self.pool = LruPool::new(pages);
    }

    /// Device counters.
    pub fn stats(&self) -> IoStats {
        self.disk.stats()
    }

    /// Clears device counters and head position.
    pub fn reset_stats(&mut self) {
        self.disk.reset_stats();
    }

    /// Marks an access-stream boundary: the next device read counts random.
    pub fn break_sequence(&mut self) {
        self.disk.break_sequence();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pager_with_pages(n: usize, cache: usize) -> Pager {
        let mut d = DiskSim::new(128);
        let first = d.allocate(n);
        for i in 0..n {
            d.write_page(first + i as u64, &[i as u8; 4]).unwrap();
        }
        d.reset_stats();
        Pager::new(d, cache)
    }

    #[test]
    fn cache_hit_avoids_device_read() {
        let mut p = pager_with_pages(4, 2);
        p.read(0).unwrap();
        p.read(0).unwrap();
        let s = p.stats();
        assert_eq!(s.total_reads(), 1);
        assert_eq!(s.cache_hits, 1);
    }

    #[test]
    fn eviction_causes_reread() {
        let mut p = pager_with_pages(4, 1);
        p.read(0).unwrap();
        p.read(1).unwrap(); // evicts 0
        p.read(0).unwrap(); // miss again
        assert_eq!(p.stats().total_reads(), 3);
        assert_eq!(p.stats().cache_hits, 0);
    }

    #[test]
    fn sequential_scan_through_pager_is_sequential_on_device() {
        let mut p = pager_with_pages(5, 8);
        for i in 0..5 {
            p.read(i).unwrap();
        }
        let s = p.stats();
        assert_eq!(s.random_reads, 1);
        assert_eq!(s.seq_reads, 4);
        // Second scan is all cache hits.
        for i in 0..5 {
            p.read(i).unwrap();
        }
        assert_eq!(p.stats().total_reads(), 5);
        assert_eq!(p.stats().cache_hits, 5);
    }

    #[test]
    fn write_through_invalidates_cache() {
        let mut p = pager_with_pages(2, 2);
        assert_eq!(p.read(0).unwrap()[0], 0);
        p.write(0, &[9, 9]).unwrap();
        assert_eq!(p.read(0).unwrap()[0], 9);
    }

    #[test]
    fn clear_cache_forces_misses() {
        let mut p = pager_with_pages(2, 2);
        p.read(0).unwrap();
        p.clear_cache();
        p.read(0).unwrap();
        assert_eq!(p.stats().total_reads(), 2);
    }

    #[test]
    fn out_of_bounds_propagates() {
        let mut p = pager_with_pages(1, 1);
        assert!(p.read(7).is_err());
    }
}
