//! Multi-handle access to one block device, with exact per-handle IO
//! accounting.
//!
//! Concurrent query serving needs many reader threads over *one* sealed
//! index image. Sharing the raw device would wreck the paper's cost model:
//! the sequential/random classification keys on the previous access of the
//! *stream*, so interleaved readers would turn each other's sequential
//! scans into random seeks and per-query counters would depend on thread
//! scheduling. [`SharedDevice`] splits the two concerns:
//!
//! * the **hub** — the real device behind an `Arc<Mutex<…>>` — carries the
//!   bytes; every handle reads and writes the same pages;
//! * each **handle** carries its own [`IoTracker`], so classification and
//!   counters reflect only that handle's access stream, exactly as if it
//!   had the device to itself.
//!
//! A query evaluated on a fresh handle therefore counts *identical* IO to
//! the same query on a private device, no matter how many other threads are
//! reading concurrently — which is what lets the concurrent serving path
//! report the same per-query counted IO as the single-threaded harness.

use crate::device::{BlockDevice, PageId};
use crate::iostats::{IoStats, IoTracker};
use reach_core::IndexError;
use std::sync::{Arc, Mutex};

/// A cloneable handle on a shared block device.
///
/// All handles see the same pages; each handle keeps private IO counters
/// (see the module docs). [`SharedDevice::clone`] yields a fresh handle
/// with zeroed counters and no head position — the state a private device
/// has right after [`BlockDevice::reset_stats`].
#[derive(Debug)]
pub struct SharedDevice {
    hub: Arc<Mutex<Box<dyn BlockDevice>>>,
    tracker: IoTracker,
    backend: &'static str,
    page_size: usize,
}

impl SharedDevice {
    /// Wraps a device for shared access and returns the first handle.
    pub fn new(inner: Box<dyn BlockDevice>) -> Self {
        let backend = inner.backend();
        let page_size = inner.page_size();
        Self {
            hub: Arc::new(Mutex::new(inner)),
            tracker: IoTracker::new(),
            backend,
            page_size,
        }
    }

    /// Number of handles alive on this hub (including this one).
    pub fn handles(&self) -> usize {
        Arc::strong_count(&self.hub)
    }

    /// Counters of the *underlying* device: the union of all handles'
    /// traffic, classified by the hub's own interleaved head position.
    /// Useful as a total-traffic gauge; per-stream attribution lives on
    /// the handles.
    pub fn hub_stats(&self) -> IoStats {
        self.lock().stats()
    }

    /// Recovers the inner device if this is the last handle; otherwise
    /// returns `self` unchanged.
    pub fn try_unwrap(self) -> Result<Box<dyn BlockDevice>, SharedDevice> {
        let SharedDevice {
            hub,
            tracker,
            backend,
            page_size,
        } = self;
        match Arc::try_unwrap(hub) {
            Ok(mutex) => Ok(mutex.into_inner().expect("shared device lock poisoned")),
            Err(hub) => Err(SharedDevice {
                hub,
                tracker,
                backend,
                page_size,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Box<dyn BlockDevice>> {
        self.hub.lock().expect("shared device lock poisoned")
    }
}

impl Clone for SharedDevice {
    /// A fresh handle on the same pages, with zeroed private counters.
    fn clone(&self) -> Self {
        Self {
            hub: Arc::clone(&self.hub),
            tracker: IoTracker::new(),
            backend: self.backend,
            page_size: self.page_size,
        }
    }
}

impl BlockDevice for SharedDevice {
    fn backend(&self) -> &'static str {
        self.backend
    }

    fn page_size(&self) -> usize {
        self.page_size
    }

    fn len_pages(&self) -> u64 {
        self.lock().len_pages()
    }

    fn allocate(&mut self, n: usize) -> Result<PageId, IndexError> {
        self.lock().allocate(n)
    }

    fn write_page(&mut self, id: PageId, data: &[u8]) -> Result<(), IndexError> {
        self.lock().write_page(id, data)?;
        self.tracker.note_write(id);
        Ok(())
    }

    fn read_page_into(&mut self, id: PageId, buf: &mut [u8]) -> Result<(), IndexError> {
        self.lock().read_page_into(id, buf)?;
        self.tracker.note_read(id);
        Ok(())
    }

    fn stats(&self) -> IoStats {
        self.tracker.stats()
    }

    fn reset_stats(&mut self) {
        self.tracker.reset();
    }

    fn break_sequence(&mut self) {
        self.tracker.break_sequence();
    }

    fn note_cache_hit(&mut self) {
        self.tracker.note_cache_hit();
    }

    fn sync(&mut self) -> Result<(), IndexError> {
        self.lock().sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimDevice;

    fn shared(pages: usize) -> SharedDevice {
        let mut inner = SimDevice::new(128);
        inner.allocate(pages).unwrap();
        inner.reset_stats();
        SharedDevice::new(Box::new(inner))
    }

    #[test]
    fn handles_see_the_same_pages() {
        let mut a = shared(4);
        let mut b = a.clone();
        a.write_page(2, b"hello").unwrap();
        let mut buf = vec![0u8; 128];
        b.read_page_into(2, &mut buf).unwrap();
        assert_eq!(&buf[..5], b"hello");
        assert_eq!(a.handles(), 2);
    }

    #[test]
    fn per_handle_classification_ignores_other_handles() {
        let mut a = shared(8);
        let mut b = a.clone();
        let mut buf = vec![0u8; 128];
        // Interleave two forward scans page by page: on a raw device each
        // access would break the other stream's sequence; per-handle
        // trackers must still see one random head seek + sequential tail.
        for p in 0..4u64 {
            a.read_page_into(p, &mut buf).unwrap();
            b.read_page_into(p, &mut buf).unwrap();
        }
        for handle in [&a, &b] {
            let s = handle.stats();
            assert_eq!(s.random_reads, 1);
            assert_eq!(s.seq_reads, 3);
        }
    }

    #[test]
    fn clone_starts_with_reset_counters() {
        let mut a = shared(2);
        let mut buf = vec![0u8; 128];
        a.read_page_into(0, &mut buf).unwrap();
        let b = a.clone();
        assert_eq!(b.stats(), IoStats::default());
        assert_eq!(a.stats().total_reads(), 1);
    }

    #[test]
    fn reset_is_local_to_the_handle() {
        let mut a = shared(2);
        let mut b = a.clone();
        let mut buf = vec![0u8; 128];
        a.read_page_into(0, &mut buf).unwrap();
        b.read_page_into(1, &mut buf).unwrap();
        a.reset_stats();
        assert_eq!(a.stats(), IoStats::default());
        assert_eq!(b.stats().total_reads(), 1);
        assert_eq!(a.hub_stats().total_reads(), 2, "hub keeps the union");
    }

    #[test]
    fn try_unwrap_returns_the_device_only_when_sole_handle() {
        let a = shared(1);
        let b = a.clone();
        let a = a.try_unwrap().expect_err("two handles alive");
        drop(b);
        let inner = a.try_unwrap().expect("last handle unwraps");
        assert_eq!(inner.len_pages(), 1);
    }

    #[test]
    fn shared_device_is_send_and_sync_capable() {
        fn assert_send<T: Send>() {}
        assert_send::<SharedDevice>();
        let mut a = shared(4);
        let mut b = a.clone();
        let t = std::thread::spawn(move || {
            let mut buf = vec![0u8; 128];
            for p in 0..4u64 {
                b.read_page_into(p, &mut buf).unwrap();
            }
            b.stats()
        });
        let mut buf = vec![0u8; 128];
        for p in 0..4u64 {
            a.read_page_into(p, &mut buf).unwrap();
        }
        let remote = t.join().unwrap();
        assert_eq!(remote.total_reads(), 4);
        assert_eq!(a.stats().total_reads(), 4);
        assert_eq!(a.stats().random_reads, 1, "classification stayed local");
    }
}
