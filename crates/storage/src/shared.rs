//! Multi-handle access to one block device, with exact per-handle IO
//! accounting.
//!
//! Concurrent query serving needs many reader threads over *one* sealed
//! index image. Sharing the raw device would wreck the paper's cost model:
//! the sequential/random classification keys on the previous access of the
//! *stream*, so interleaved readers would turn each other's sequential
//! scans into random seeks and per-query counters would depend on thread
//! scheduling. [`SharedDevice`] splits the two concerns:
//!
//! * the **hub** — the real device behind an `Arc<Mutex<…>>` — carries the
//!   bytes; every handle reads and writes the same pages;
//! * each **handle** carries its own [`IoTracker`], so classification and
//!   counters reflect only that handle's access stream, exactly as if it
//!   had the device to itself.
//!
//! A query evaluated on a fresh handle therefore counts *identical* IO to
//! the same query on a private device, no matter how many other threads are
//! reading concurrently — which is what lets the concurrent serving path
//! report the same per-query counted IO as the single-threaded harness.
//!
//! ## One cache per hub
//!
//! A hub may additionally carry a shared [`PageCache`]
//! ([`SharedDevice::with_cache`]). Every handle advertises it through
//! [`BlockDevice::shared_cache`], so every [`Pager`](crate::Pager) built
//! over a handle — each `reach_serve` worker, each `ConcurrentLive` epoch
//! reader — attaches to the *same* residency automatically. The cache
//! carries bytes only; accounting stays per handle: a cache hit is noted on
//! the handle's private tracker ([`IoStats::cache_hits`], plus the new
//! prefetch fields) and never disturbs the sequential/random classification
//! of the reads the handle does issue. Writes through any handle update the
//! cached copy in place, so no handle can observe a stale page. Hubs built
//! by [`SharedDevice::new`] carry no cache — that is the default, and it is
//! what keeps the paper's cold-cache counters the regression-gated tier.

use crate::cache::PageCache;
use crate::device::{BlockDevice, PageId};
use crate::iostats::{IoStats, IoTracker};
use reach_core::IndexError;
use std::sync::{Arc, Mutex};

/// A cloneable handle on a shared block device.
///
/// All handles see the same pages; each handle keeps private IO counters
/// (see the module docs). [`SharedDevice::clone`] yields a fresh handle
/// with zeroed counters and no head position — the state a private device
/// has right after [`BlockDevice::reset_stats`].
#[derive(Debug)]
pub struct SharedDevice {
    hub: Arc<Mutex<Box<dyn BlockDevice>>>,
    cache: Option<Arc<PageCache>>,
    tracker: IoTracker,
    backend: &'static str,
    page_size: usize,
}

impl SharedDevice {
    /// Wraps a device for shared access and returns the first handle.
    /// No cache: pagers over the handles keep their private pools.
    pub fn new(inner: Box<dyn BlockDevice>) -> Self {
        Self::assemble(inner, None)
    }

    /// Wraps a device for shared access with a hub-wide [`PageCache`]:
    /// every pager built over any handle of this hub shares residency (see
    /// the module docs).
    pub fn with_cache(inner: Box<dyn BlockDevice>, cache: Arc<PageCache>) -> Self {
        Self::assemble(inner, Some(cache))
    }

    fn assemble(inner: Box<dyn BlockDevice>, cache: Option<Arc<PageCache>>) -> Self {
        let backend = inner.backend();
        let page_size = inner.page_size();
        Self {
            hub: Arc::new(Mutex::new(inner)),
            cache,
            tracker: IoTracker::new(),
            backend,
            page_size,
        }
    }

    /// The hub-wide page cache, if this hub carries one.
    pub fn cache(&self) -> Option<&Arc<PageCache>> {
        self.cache.as_ref()
    }

    /// Number of handles alive on this hub (including this one).
    pub fn handles(&self) -> usize {
        Arc::strong_count(&self.hub)
    }

    /// Counters of the *underlying* device: the union of all handles'
    /// traffic, classified by the hub's own interleaved head position.
    /// Useful as a total-traffic gauge; per-stream attribution lives on
    /// the handles.
    pub fn hub_stats(&self) -> IoStats {
        self.lock().stats()
    }

    /// Recovers the inner device if this is the last handle; otherwise
    /// returns `self` unchanged.
    // The Err variant hands the whole handle back by design — callers
    // keep using it when other handles are still alive.
    #[allow(clippy::result_large_err)]
    pub fn try_unwrap(self) -> Result<Box<dyn BlockDevice>, SharedDevice> {
        let SharedDevice {
            hub,
            cache,
            tracker,
            backend,
            page_size,
        } = self;
        match Arc::try_unwrap(hub) {
            Ok(mutex) => Ok(mutex.into_inner().expect("shared device lock poisoned")),
            Err(hub) => Err(SharedDevice {
                hub,
                cache,
                tracker,
                backend,
                page_size,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Box<dyn BlockDevice>> {
        self.hub.lock().expect("shared device lock poisoned")
    }
}

impl Clone for SharedDevice {
    /// A fresh handle on the same pages, with zeroed private counters.
    fn clone(&self) -> Self {
        Self {
            hub: Arc::clone(&self.hub),
            cache: self.cache.clone(),
            tracker: IoTracker::new(),
            backend: self.backend,
            page_size: self.page_size,
        }
    }
}

impl BlockDevice for SharedDevice {
    fn backend(&self) -> &'static str {
        self.backend
    }

    fn page_size(&self) -> usize {
        self.page_size
    }

    fn len_pages(&self) -> u64 {
        self.lock().len_pages()
    }

    fn allocate(&mut self, n: usize) -> Result<PageId, IndexError> {
        self.lock().allocate(n)
    }

    fn write_page(&mut self, id: PageId, data: &[u8]) -> Result<(), IndexError> {
        self.lock().write_page(id, data)?;
        // Keep the shared residency coherent: a resident copy of the page is
        // rewritten in place, so no handle's pager can serve stale bytes.
        if let Some(cache) = &self.cache {
            cache.update(id, data, self.page_size);
        }
        self.tracker.note_write(id);
        Ok(())
    }

    fn read_page_into(&mut self, id: PageId, buf: &mut [u8]) -> Result<(), IndexError> {
        self.lock().read_page_into(id, buf)?;
        self.tracker.note_read(id);
        Ok(())
    }

    fn stats(&self) -> IoStats {
        self.tracker.stats()
    }

    fn reset_stats(&mut self) {
        self.tracker.reset();
    }

    fn break_sequence(&mut self) {
        self.tracker.break_sequence();
    }

    fn note_cache_hit(&mut self) {
        self.tracker.note_cache_hit();
    }

    fn note_prefetched(&mut self) {
        self.tracker.note_prefetched();
    }

    fn note_prefetch_hit(&mut self) {
        self.tracker.note_prefetch_hit();
    }

    fn shared_cache(&self) -> Option<Arc<PageCache>> {
        self.cache.clone()
    }

    fn sync(&mut self) -> Result<(), IndexError> {
        self.lock().sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimDevice;

    fn shared(pages: usize) -> SharedDevice {
        let mut inner = SimDevice::new(128);
        inner.allocate(pages).unwrap();
        inner.reset_stats();
        SharedDevice::new(Box::new(inner))
    }

    #[test]
    fn handles_see_the_same_pages() {
        let mut a = shared(4);
        let mut b = a.clone();
        a.write_page(2, b"hello").unwrap();
        let mut buf = vec![0u8; 128];
        b.read_page_into(2, &mut buf).unwrap();
        assert_eq!(&buf[..5], b"hello");
        assert_eq!(a.handles(), 2);
    }

    #[test]
    fn per_handle_classification_ignores_other_handles() {
        let mut a = shared(8);
        let mut b = a.clone();
        let mut buf = vec![0u8; 128];
        // Interleave two forward scans page by page: on a raw device each
        // access would break the other stream's sequence; per-handle
        // trackers must still see one random head seek + sequential tail.
        for p in 0..4u64 {
            a.read_page_into(p, &mut buf).unwrap();
            b.read_page_into(p, &mut buf).unwrap();
        }
        for handle in [&a, &b] {
            let s = handle.stats();
            assert_eq!(s.random_reads, 1);
            assert_eq!(s.seq_reads, 3);
        }
    }

    #[test]
    fn clone_starts_with_reset_counters() {
        let mut a = shared(2);
        let mut buf = vec![0u8; 128];
        a.read_page_into(0, &mut buf).unwrap();
        let b = a.clone();
        assert_eq!(b.stats(), IoStats::default());
        assert_eq!(a.stats().total_reads(), 1);
    }

    #[test]
    fn reset_is_local_to_the_handle() {
        let mut a = shared(2);
        let mut b = a.clone();
        let mut buf = vec![0u8; 128];
        a.read_page_into(0, &mut buf).unwrap();
        b.read_page_into(1, &mut buf).unwrap();
        a.reset_stats();
        assert_eq!(a.stats(), IoStats::default());
        assert_eq!(b.stats().total_reads(), 1);
        assert_eq!(a.hub_stats().total_reads(), 2, "hub keeps the union");
    }

    #[test]
    fn try_unwrap_returns_the_device_only_when_sole_handle() {
        let a = shared(1);
        let b = a.clone();
        let a = a.try_unwrap().expect_err("two handles alive");
        drop(b);
        let inner = a.try_unwrap().expect("last handle unwraps");
        assert_eq!(inner.len_pages(), 1);
    }

    #[test]
    fn handles_share_the_hub_cache_and_writes_update_it() {
        let mut inner = SimDevice::new(128);
        inner.allocate(4).unwrap();
        inner.reset_stats();
        let cache = Arc::new(PageCache::new(4));
        let mut a = SharedDevice::with_cache(Box::new(inner), cache.clone());
        let b = a.clone();
        assert!(b.shared_cache().is_some(), "clones advertise the cache");
        cache.insert(2, b"stale");
        a.write_page(2, b"fresh").unwrap();
        let (bytes, _) = cache.lookup(2).expect("still resident");
        assert_eq!(&bytes[..5], b"fresh");
        assert!(bytes[5..].iter().all(|&x| x == 0), "tail zero-padded");
    }

    #[test]
    fn plain_hubs_advertise_no_cache() {
        let a = shared(1);
        assert!(a.shared_cache().is_none());
        assert!(a.cache().is_none());
    }

    #[test]
    fn shared_device_is_send_and_sync_capable() {
        fn assert_send<T: Send>() {}
        assert_send::<SharedDevice>();
        let mut a = shared(4);
        let mut b = a.clone();
        let t = std::thread::spawn(move || {
            let mut buf = vec![0u8; 128];
            for p in 0..4u64 {
                b.read_page_into(p, &mut buf).unwrap();
            }
            b.stats()
        });
        let mut buf = vec![0u8; 128];
        for p in 0..4u64 {
            a.read_page_into(p, &mut buf).unwrap();
        }
        let remote = t.join().unwrap();
        assert_eq!(remote.total_reads(), 4);
        assert_eq!(a.stats().total_reads(), 4);
        assert_eq!(a.stats().random_reads, 1, "classification stayed local");
    }
}
