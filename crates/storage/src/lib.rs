//! # reach-storage
//!
//! Simulated disk substrate for the reachability indexes.
//!
//! The paper's core systems contribution is *disk placement*: both ReachGrid
//! (§4.1) and ReachGraph (§5.1.3) carefully lay their structures out on
//! consecutive blocks so query-time traversal turns random IO into
//! sequential scans, and both report cost in normalized IOs (random +
//! sequential/20, §6). Reproducing that on real hardware is neither portable
//! nor measurable at laptop scale, so this crate provides:
//!
//! * [`DiskSim`] — a memory-backed page device that counts reads, classifies
//!   them as sequential or random, and counts construction writes;
//! * [`LruPool`] / [`Pager`] — the buffer pool both indexes use at query
//!   time;
//! * [`ByteWriter`] / [`ByteReader`] — the checked binary codec for on-page
//!   records;
//! * [`RecordWriter`] / [`read_record`] — variable-length records spanning
//!   pages, with page-aligned placement control.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod buffer;
pub mod codec;
pub mod disk;
pub mod iostats;
pub mod layout;
pub mod pager;

pub use buffer::LruPool;
pub use codec::{ByteReader, ByteWriter};
pub use disk::{DiskSim, PageId, DEFAULT_PAGE_SIZE};
pub use iostats::IoStats;
pub use layout::{read_record, RecordPtr, RecordWriter};
pub use pager::Pager;
