//! # reach-storage
//!
//! Pluggable block-device substrate for the reachability indexes.
//!
//! The paper's core systems contribution is *disk placement*: both ReachGrid
//! (§4.1) and ReachGraph (§5.1.3) carefully lay their structures out on
//! consecutive blocks so query-time traversal turns random IO into
//! sequential scans, and both report cost in normalized IOs (random +
//! sequential/20, §6). This crate reproduces that measurement model behind a
//! [`BlockDevice`] trait with three interchangeable backends:
//!
//! | backend | persistence | use |
//! |---|---|---|
//! | [`SimDevice`] | none (memory) | the paper's IO-count evaluation model |
//! | [`FileDevice`] | real file, positioned IO | persistence + wall-clock benchmarking |
//! | [`MmapDevice`] | real file, memory-resident image | read-heavy query workloads |
//!
//! All three share one accounting path ([`IoStats`] via
//! `iostats::IoTracker`), so an index costs *identical counted IO* on every
//! backend — which the backend-equivalence test suite asserts. Around the
//! devices sit:
//!
//! * [`LruPool`] / [`Pager`] — the buffer pool both indexes use at query
//!   time (the pager owns its device as `Box<dyn BlockDevice>`; see
//!   [`pager`] for why erasure beats genericity here);
//! * [`PageCache`] — the sharded, concurrency-safe page cache a
//!   [`SharedDevice`] hub can carry, pooling residency across queries and
//!   serving threads, with readahead prefetch (see [`cache`]); off by
//!   default so the paper's cold-cache counters stay the reference tier;
//! * [`ByteWriter`] / [`ByteReader`] — the checked binary codec for on-page
//!   records;
//! * [`RecordWriter`] / [`read_record`] — variable-length records spanning
//!   pages, with page-aligned placement control;
//! * [`SpillPool`] — the spillable decoded-segment buffer behind
//!   memory-bounded ([`BuildBudget`]) index construction, with spill IO
//!   accounted separately from index IO;
//! * [`meta`] — self-describing metadata footers so file-backed indexes can
//!   be dropped and reopened;
//! * [`StorageConfig`] — the runtime factory selecting a backend from
//!   configuration;
//! * [`DeviceDirectory`] — a named-device factory for multi-file subsystems
//!   (the epoch-sharded live timeline keeps one device per sealed shard).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod buffer;
pub mod cache;
pub mod codec;
pub mod config;
pub mod device;
pub mod directory;
pub mod file;
pub mod iostats;
pub mod layout;
pub mod meta;
pub mod mmap;
pub mod pager;
pub mod shared;
pub mod sim;
pub mod spill;
pub mod timeline;

pub use buffer::LruPool;
pub use cache::{CacheStats, PageCache};
pub use codec::{ByteReader, ByteWriter};
pub use config::{StorageBackend, StorageConfig};
pub use device::{BlockDevice, PageId, DEFAULT_PAGE_SIZE};
pub use directory::{DeviceDirectory, DirectoryBackend};
pub use file::FileDevice;
pub use iostats::{IoSampler, IoStats};
pub use layout::{read_record, RecordPtr, RecordWriter};
pub use mmap::MmapDevice;
pub use pager::Pager;
pub use shared::SharedDevice;
pub use sim::SimDevice;
pub use spill::{BuildBudget, SpillPool, SpillStats, Spillable};
pub use timeline::TimelineRegion;
