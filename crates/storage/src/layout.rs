//! Record layout on pages.
//!
//! Index builders append variable-length records into a consecutive page
//! range; records may span page boundaries (a populated ReachGrid cell or a
//! large HN partition easily exceeds 4 KB). Readers fetch a record through
//! the pager: the first page access is random, continuation pages are
//! sequential — exactly the placement effect the paper's §4.1/§5.1.3
//! optimize for. The writer and reader are backend-agnostic: they speak to
//! any [`BlockDevice`] and to the [`Pager`], so the same layout lands
//! byte-identically on the simulator, a file, or the mapped device.

use crate::codec::{ByteReader, ByteWriter};
use crate::device::{BlockDevice, PageId};
use crate::pager::Pager;
use reach_core::IndexError;

/// Address of a record on disk: page plus byte offset of its length prefix.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct RecordPtr {
    /// Page holding the first byte of the record header.
    pub page: PageId,
    /// Byte offset inside that page.
    pub offset: u32,
}

impl RecordPtr {
    /// Serialized size of a pointer.
    pub const ENCODED_LEN: usize = 12;

    /// Encodes the pointer.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.page);
        w.put_u32(self.offset);
    }

    /// Decodes a pointer.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, IndexError> {
        Ok(Self {
            page: r.get_u64()?,
            offset: r.get_u32()?,
        })
    }
}

/// Append-only record writer over any [`BlockDevice`].
///
/// Records are `[len: u32][payload…]`, written contiguously; a record whose
/// tail does not fit the current page continues on the next allocated page.
/// `align_to_page` starts the next record on a fresh page — used when a
/// structure (e.g. a grid cell) must begin on a page boundary so its first
/// access is a single random IO.
#[derive(Debug)]
pub struct RecordWriter {
    first_page: PageId,
    cur_page: PageId,
    cur: Vec<u8>,
    page_size: usize,
    written_pages: u64,
}

impl RecordWriter {
    /// Starts writing at a freshly allocated page of `disk`.
    pub fn new(disk: &mut dyn BlockDevice) -> Result<Self, IndexError> {
        let page_size = disk.page_size();
        let first_page = disk.allocate(1)?;
        Ok(Self {
            first_page,
            cur_page: first_page,
            cur: Vec::with_capacity(page_size),
            page_size,
            written_pages: 0,
        })
    }

    /// The page where this writer began.
    pub fn first_page(&self) -> PageId {
        self.first_page
    }

    /// Position where the *next* record will start.
    pub fn tell(&self) -> RecordPtr {
        RecordPtr {
            page: self.cur_page,
            offset: self.cur.len() as u32,
        }
    }

    /// Appends one record, returning its address.
    pub fn append(
        &mut self,
        disk: &mut dyn BlockDevice,
        payload: &[u8],
    ) -> Result<RecordPtr, IndexError> {
        let ptr = self.tell();
        let mut header = ByteWriter::with_capacity(4);
        header.put_u32(u32::try_from(payload.len()).expect("record length fits u32"));
        self.push_bytes(disk, header.as_bytes())?;
        self.push_bytes(disk, payload)?;
        Ok(ptr)
    }

    fn push_bytes(
        &mut self,
        disk: &mut dyn BlockDevice,
        mut bytes: &[u8],
    ) -> Result<(), IndexError> {
        while !bytes.is_empty() {
            let room = self.page_size - self.cur.len();
            if room == 0 {
                self.flush_page(disk, true)?;
                continue;
            }
            let n = room.min(bytes.len());
            self.cur.extend_from_slice(&bytes[..n]);
            bytes = &bytes[n..];
        }
        Ok(())
    }

    fn flush_page(
        &mut self,
        disk: &mut dyn BlockDevice,
        allocate_next: bool,
    ) -> Result<(), IndexError> {
        disk.write_page(self.cur_page, &self.cur)?;
        self.written_pages += 1;
        self.cur.clear();
        if allocate_next {
            self.cur_page = disk.allocate(1)?;
        }
        Ok(())
    }

    /// Starts the next record on a fresh page (no-op when already at a page
    /// start).
    pub fn align_to_page(&mut self, disk: &mut dyn BlockDevice) -> Result<(), IndexError> {
        if !self.cur.is_empty() {
            self.flush_page(disk, true)?;
        }
        Ok(())
    }

    /// Flushes the trailing partial page and returns the total number of
    /// pages written.
    pub fn finish(mut self, disk: &mut dyn BlockDevice) -> Result<u64, IndexError> {
        if !self.cur.is_empty() {
            self.flush_page(disk, false)?;
        }
        Ok(self.written_pages)
    }
}

/// Reads one record (written by [`RecordWriter::append`]) through the pager.
///
/// Each page is fetched through [`Pager::with_page`] **exactly once**, and
/// its bytes — length-prefix bytes and payload bytes alike — are consumed in
/// that single visit. That preserves the device's accounting contract (one
/// counted read per page touched, same as the original owning reader) even
/// on a zero-capacity pool, while copying each byte only once, straight from
/// the pool buffer into the returned record. The result is owned because
/// records span pages.
pub fn read_record(pager: &mut Pager, ptr: RecordPtr) -> Result<Vec<u8>, IndexError> {
    let page_size = pager.page_size();
    let device_bytes = pager.device().size_bytes();
    let mut page_id = ptr.page;
    let mut off = ptr.offset as usize;
    let mut len_bytes: [u8; 4] = [0; 4];
    let mut len_filled = 0usize;
    let mut total: Option<usize> = None;
    let mut out: Vec<u8> = Vec::new();
    let mut prefetched = false;
    loop {
        if off == page_size {
            page_id += 1;
            off = 0;
        }
        off = pager.with_page(page_id, |page| {
            let mut pos = off;
            // Finish the 4-byte length prefix first…
            while len_filled < 4 && pos < page_size {
                len_bytes[len_filled] = page[pos];
                len_filled += 1;
                pos += 1;
            }
            if len_filled == 4 && total.is_none() {
                total = Some(u32::from_le_bytes(len_bytes) as usize);
            }
            // …then take as much payload as this page still holds.
            if let Some(len) = total {
                let chunk = (len - out.len()).min(page_size - pos);
                out.extend_from_slice(&page[pos..pos + chunk]);
                pos += chunk;
            }
            pos
        })?;
        if let Some(len) = total {
            // Guard against corrupt pointers: a record cannot be larger than
            // the remaining device (at most one page of it was copied above
            // before this check runs).
            if (len as u64) > device_bytes {
                return Err(IndexError::Corrupt(format!(
                    "record at page {} offset {} claims {} bytes",
                    ptr.page, ptr.offset, len
                )));
            }
            // Reserve only after the guard above has vetted the length (the
            // closure never copies more than one page before reaching here).
            if out.capacity() < len {
                out.reserve_exact(len - out.len());
            }
            if out.len() == len {
                return Ok(out);
            }
            // The record continues on the pages that follow; with readahead
            // enabled, pull a window of them in ahead of the scan. (The
            // record always resumes at the next page: the closure drains the
            // current page before leaving the payload short.)
            if !prefetched {
                prefetched = true;
                let span = (len - out.len()).div_ceil(page_size);
                pager.prefetch(page_id + 1, span)?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimDevice;

    #[test]
    fn small_records_roundtrip() {
        let mut disk = SimDevice::new(64);
        let mut w = RecordWriter::new(&mut disk).unwrap();
        let p1 = w.append(&mut disk, b"alpha").unwrap();
        let p2 = w.append(&mut disk, b"beta").unwrap();
        w.finish(&mut disk).unwrap();
        disk.reset_stats();

        let mut pager = Pager::new(Box::new(disk), 4);
        assert_eq!(read_record(&mut pager, p1).unwrap(), b"alpha");
        assert_eq!(read_record(&mut pager, p2).unwrap(), b"beta");
    }

    #[test]
    fn record_spanning_pages_roundtrips() {
        let mut disk = SimDevice::new(64);
        let mut w = RecordWriter::new(&mut disk).unwrap();
        let big: Vec<u8> = (0..300).map(|i| (i % 251) as u8).collect();
        let ptr = w.append(&mut disk, &big).unwrap();
        w.finish(&mut disk).unwrap();
        disk.reset_stats();

        let mut pager = Pager::new(Box::new(disk), 16);
        assert_eq!(read_record(&mut pager, ptr).unwrap(), big);
        // Spanning read: first page random, continuations sequential.
        let s = pager.stats();
        assert_eq!(s.random_reads, 1);
        assert!(s.seq_reads >= 4, "300B over 64B pages spans ≥5 pages");
    }

    #[test]
    fn align_to_page_starts_fresh_page() {
        let mut disk = SimDevice::new(64);
        let mut w = RecordWriter::new(&mut disk).unwrap();
        w.append(&mut disk, b"x").unwrap();
        w.align_to_page(&mut disk).unwrap();
        let p = w.tell();
        assert_eq!(p.offset, 0);
        let ptr = w.append(&mut disk, b"page-aligned").unwrap();
        assert_eq!(ptr.offset, 0);
        w.finish(&mut disk).unwrap();
        disk.reset_stats();
        let mut pager = Pager::new(Box::new(disk), 4);
        assert_eq!(read_record(&mut pager, ptr).unwrap(), b"page-aligned");
    }

    #[test]
    fn empty_record_roundtrips() {
        let mut disk = SimDevice::new(64);
        let mut w = RecordWriter::new(&mut disk).unwrap();
        let ptr = w.append(&mut disk, b"").unwrap();
        w.finish(&mut disk).unwrap();
        let mut pager = Pager::new(Box::new(disk), 4);
        assert_eq!(read_record(&mut pager, ptr).unwrap(), b"");
    }

    #[test]
    fn many_records_all_recoverable() {
        let mut disk = SimDevice::new(128);
        let mut w = RecordWriter::new(&mut disk).unwrap();
        let mut ptrs = Vec::new();
        for i in 0..200u32 {
            let payload: Vec<u8> = (0..(i % 37)).map(|j| (i + j) as u8).collect();
            ptrs.push((w.append(&mut disk, &payload).unwrap(), payload));
        }
        w.finish(&mut disk).unwrap();
        let mut pager = Pager::new(Box::new(disk), 8);
        for (ptr, expect) in &ptrs {
            assert_eq!(&read_record(&mut pager, *ptr).unwrap(), expect);
        }
    }

    #[test]
    fn each_page_is_charged_exactly_once_even_without_a_pool() {
        // Regression: the reader must not re-fetch a record's first page for
        // the payload after reading the length prefix — on a zero-capacity
        // pool (ReachGraph's configuration) that would double-charge a
        // random IO per record and skew the paper's normalized-IO metric.
        let mut disk = SimDevice::new(64);
        let mut w = RecordWriter::new(&mut disk).unwrap();
        let one_page = w.append(&mut disk, b"fits in one page").unwrap();
        w.align_to_page(&mut disk).unwrap();
        let spanning = w.append(&mut disk, &[7u8; 150]).unwrap();
        w.finish(&mut disk).unwrap();
        disk.reset_stats();

        let mut pager = Pager::new(Box::new(disk), 0);
        assert_eq!(
            read_record(&mut pager, one_page).unwrap(),
            b"fits in one page"
        );
        let s = pager.stats();
        assert_eq!(
            (s.random_reads, s.seq_reads, s.cache_hits),
            (1, 0, 0),
            "single-page record must cost exactly one read"
        );
        pager.reset_stats();
        assert_eq!(read_record(&mut pager, spanning).unwrap(), [7u8; 150]);
        let s = pager.stats();
        // 150 B + 4 B prefix over 64 B pages = 3 pages: 1 random + 2 seq.
        assert_eq!((s.random_reads, s.seq_reads, s.cache_hits), (1, 2, 0));
    }

    #[test]
    fn corrupt_pointer_reports_error() {
        let mut disk = SimDevice::new(64);
        let mut w = RecordWriter::new(&mut disk).unwrap();
        w.append(&mut disk, b"ok").unwrap();
        w.finish(&mut disk).unwrap();
        // Write a bogus giant length at a fresh page.
        let p = disk.allocate(1).unwrap();
        disk.write_page(p, &u32::MAX.to_le_bytes()).unwrap();
        let mut pager = Pager::new(Box::new(disk), 4);
        let bogus = RecordPtr { page: p, offset: 0 };
        assert!(read_record(&mut pager, bogus).is_err());
    }

    #[test]
    fn record_ptr_codec_roundtrip() {
        let ptr = RecordPtr {
            page: 123456789,
            offset: 4321,
        };
        let mut w = ByteWriter::new();
        ptr.encode(&mut w);
        assert_eq!(w.len(), RecordPtr::ENCODED_LEN);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(RecordPtr::decode(&mut r).unwrap(), ptr);
    }
}
