//! Record layout on pages.
//!
//! Index builders append variable-length records into a consecutive page
//! range; records may span page boundaries (a populated ReachGrid cell or a
//! large HN partition easily exceeds 4 KB). Readers fetch a record through
//! the pager: the first page access is random, continuation pages are
//! sequential — exactly the placement effect the paper's §4.1/§5.1.3
//! optimize for.

use crate::codec::{ByteReader, ByteWriter};
use crate::disk::{DiskSim, PageId};
use crate::pager::Pager;
use reach_core::IndexError;

/// Address of a record on disk: page plus byte offset of its length prefix.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct RecordPtr {
    /// Page holding the first byte of the record header.
    pub page: PageId,
    /// Byte offset inside that page.
    pub offset: u32,
}

impl RecordPtr {
    /// Serialized size of a pointer.
    pub const ENCODED_LEN: usize = 12;

    /// Encodes the pointer.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.page);
        w.put_u32(self.offset);
    }

    /// Decodes a pointer.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, IndexError> {
        Ok(Self {
            page: r.get_u64()?,
            offset: r.get_u32()?,
        })
    }
}

/// Append-only record writer over a [`DiskSim`].
///
/// Records are `[len: u32][payload…]`, written contiguously; a record whose
/// tail does not fit the current page continues on the next allocated page.
/// `align_to_page` starts the next record on a fresh page — used when a
/// structure (e.g. a grid cell) must begin on a page boundary so its first
/// access is a single random IO.
#[derive(Debug)]
pub struct RecordWriter {
    first_page: PageId,
    cur_page: PageId,
    cur: Vec<u8>,
    page_size: usize,
    written_pages: u64,
}

impl RecordWriter {
    /// Starts writing at a freshly allocated page of `disk`.
    pub fn new(disk: &mut DiskSim) -> Self {
        let page_size = disk.page_size();
        let first_page = disk.allocate(1);
        Self {
            first_page,
            cur_page: first_page,
            cur: Vec::with_capacity(page_size),
            page_size,
            written_pages: 0,
        }
    }

    /// The page where this writer began.
    pub fn first_page(&self) -> PageId {
        self.first_page
    }

    /// Position where the *next* record will start.
    pub fn tell(&self) -> RecordPtr {
        RecordPtr {
            page: self.cur_page,
            offset: self.cur.len() as u32,
        }
    }

    /// Appends one record, returning its address.
    pub fn append(&mut self, disk: &mut DiskSim, payload: &[u8]) -> Result<RecordPtr, IndexError> {
        let ptr = self.tell();
        let mut header = ByteWriter::with_capacity(4);
        header.put_u32(u32::try_from(payload.len()).expect("record length fits u32"));
        self.push_bytes(disk, header.as_bytes())?;
        self.push_bytes(disk, payload)?;
        Ok(ptr)
    }

    fn push_bytes(&mut self, disk: &mut DiskSim, mut bytes: &[u8]) -> Result<(), IndexError> {
        while !bytes.is_empty() {
            let room = self.page_size - self.cur.len();
            if room == 0 {
                self.flush_page(disk, true)?;
                continue;
            }
            let n = room.min(bytes.len());
            self.cur.extend_from_slice(&bytes[..n]);
            bytes = &bytes[n..];
        }
        Ok(())
    }

    fn flush_page(&mut self, disk: &mut DiskSim, allocate_next: bool) -> Result<(), IndexError> {
        disk.write_page(self.cur_page, &self.cur)?;
        self.written_pages += 1;
        self.cur.clear();
        if allocate_next {
            self.cur_page = disk.allocate(1);
        }
        Ok(())
    }

    /// Starts the next record on a fresh page (no-op when already at a page
    /// start).
    pub fn align_to_page(&mut self, disk: &mut DiskSim) -> Result<(), IndexError> {
        if !self.cur.is_empty() {
            self.flush_page(disk, true)?;
        }
        Ok(())
    }

    /// Flushes the trailing partial page and returns the total number of
    /// pages written.
    pub fn finish(mut self, disk: &mut DiskSim) -> Result<u64, IndexError> {
        if !self.cur.is_empty() {
            self.flush_page(disk, false)?;
        }
        Ok(self.written_pages)
    }
}

/// Reads one record (written by [`RecordWriter::append`]) through the pager.
pub fn read_record(pager: &mut Pager, ptr: RecordPtr) -> Result<Vec<u8>, IndexError> {
    let page_size = pager.page_size();
    let mut page = pager.read(ptr.page)?;
    let mut off = ptr.offset as usize;
    let mut page_id = ptr.page;

    let take = |pager: &mut Pager,
                page: &mut Box<[u8]>,
                page_id: &mut PageId,
                off: &mut usize,
                n: usize|
     -> Result<Vec<u8>, IndexError> {
        let mut out = Vec::with_capacity(n);
        let mut left = n;
        while left > 0 {
            if *off == page_size {
                *page_id += 1;
                *page = pager.read(*page_id)?;
                *off = 0;
            }
            let chunk = left.min(page_size - *off);
            out.extend_from_slice(&page[*off..*off + chunk]);
            *off += chunk;
            left -= chunk;
        }
        Ok(out)
    };

    let len_bytes = take(pager, &mut page, &mut page_id, &mut off, 4)?;
    let len = u32::from_le_bytes([len_bytes[0], len_bytes[1], len_bytes[2], len_bytes[3]]) as usize;
    // Guard against corrupt pointers: a record cannot be larger than the
    // remaining device.
    let device_bytes = pager.disk().size_bytes();
    if (len as u64) > device_bytes {
        return Err(IndexError::Corrupt(format!(
            "record at page {} offset {} claims {} bytes",
            ptr.page, ptr.offset, len
        )));
    }
    take(pager, &mut page, &mut page_id, &mut off, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_records_roundtrip() {
        let mut disk = DiskSim::new(64);
        let mut w = RecordWriter::new(&mut disk);
        let p1 = w.append(&mut disk, b"alpha").unwrap();
        let p2 = w.append(&mut disk, b"beta").unwrap();
        w.finish(&mut disk).unwrap();
        disk.reset_stats();

        let mut pager = Pager::new(disk, 4);
        assert_eq!(read_record(&mut pager, p1).unwrap(), b"alpha");
        assert_eq!(read_record(&mut pager, p2).unwrap(), b"beta");
    }

    #[test]
    fn record_spanning_pages_roundtrips() {
        let mut disk = DiskSim::new(64);
        let mut w = RecordWriter::new(&mut disk);
        let big: Vec<u8> = (0..300).map(|i| (i % 251) as u8).collect();
        let ptr = w.append(&mut disk, &big).unwrap();
        w.finish(&mut disk).unwrap();
        disk.reset_stats();

        let mut pager = Pager::new(disk, 16);
        assert_eq!(read_record(&mut pager, ptr).unwrap(), big);
        // Spanning read: first page random, continuations sequential.
        let s = pager.stats();
        assert_eq!(s.random_reads, 1);
        assert!(s.seq_reads >= 4, "300B over 64B pages spans ≥5 pages");
    }

    #[test]
    fn align_to_page_starts_fresh_page() {
        let mut disk = DiskSim::new(64);
        let mut w = RecordWriter::new(&mut disk);
        w.append(&mut disk, b"x").unwrap();
        w.align_to_page(&mut disk).unwrap();
        let p = w.tell();
        assert_eq!(p.offset, 0);
        let ptr = w.append(&mut disk, b"page-aligned").unwrap();
        assert_eq!(ptr.offset, 0);
        w.finish(&mut disk).unwrap();
        disk.reset_stats();
        let mut pager = Pager::new(disk, 4);
        assert_eq!(read_record(&mut pager, ptr).unwrap(), b"page-aligned");
    }

    #[test]
    fn empty_record_roundtrips() {
        let mut disk = DiskSim::new(64);
        let mut w = RecordWriter::new(&mut disk);
        let ptr = w.append(&mut disk, b"").unwrap();
        w.finish(&mut disk).unwrap();
        let mut pager = Pager::new(disk, 4);
        assert_eq!(read_record(&mut pager, ptr).unwrap(), b"");
    }

    #[test]
    fn many_records_all_recoverable() {
        let mut disk = DiskSim::new(128);
        let mut w = RecordWriter::new(&mut disk);
        let mut ptrs = Vec::new();
        for i in 0..200u32 {
            let payload: Vec<u8> = (0..(i % 37)).map(|j| (i + j) as u8).collect();
            ptrs.push((w.append(&mut disk, &payload).unwrap(), payload));
        }
        w.finish(&mut disk).unwrap();
        let mut pager = Pager::new(disk, 8);
        for (ptr, expect) in &ptrs {
            assert_eq!(&read_record(&mut pager, *ptr).unwrap(), expect);
        }
    }

    #[test]
    fn corrupt_pointer_reports_error() {
        let mut disk = DiskSim::new(64);
        let mut w = RecordWriter::new(&mut disk);
        w.append(&mut disk, b"ok").unwrap();
        w.finish(&mut disk).unwrap();
        // Write a bogus giant length at a fresh page.
        let p = disk.allocate(1);
        disk.write_page(p, &u32::MAX.to_le_bytes()).unwrap();
        let mut pager = Pager::new(disk, 4);
        let bogus = RecordPtr { page: p, offset: 0 };
        assert!(read_record(&mut pager, bogus).is_err());
    }

    #[test]
    fn record_ptr_codec_roundtrip() {
        let ptr = RecordPtr {
            page: 123456789,
            offset: 4321,
        };
        let mut w = ByteWriter::new();
        ptr.encode(&mut w);
        assert_eq!(w.len(), RecordPtr::ENCODED_LEN);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(RecordPtr::decode(&mut r).unwrap(), ptr);
    }
}
