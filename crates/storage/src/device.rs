//! The block-device abstraction every index runs on.
//!
//! The paper's measurement model (§6) is defined over page IOs: reads are
//! classified as *sequential* (immediately following the previous access) or
//! *random* (everything else) and normalized 20:1. [`BlockDevice`] captures
//! exactly that contract — fixed-size pages, append-only allocation, and IO
//! accounting through [`IoStats`] — so the same index code runs unchanged on
//! the in-memory simulator ([`SimDevice`](crate::SimDevice)), a real file
//! ([`FileDevice`](crate::FileDevice)), or the read-optimized mapped device
//! ([`MmapDevice`](crate::MmapDevice)), and every backend reports the same
//! paper-comparable counters.
//!
//! All accounting flows through [`IoTracker`](crate::iostats::IoTracker), so
//! the sequential/random classification is byte-for-byte identical across
//! backends: a query costs the same *counted* IO on a `FileDevice` as on the
//! simulator, which is what makes the backend-equivalence suite able to
//! assert identical stats.

use crate::cache::PageCache;
use crate::iostats::IoStats;
use reach_core::IndexError;
use std::sync::Arc;

/// Default page size, matching the paper's experimental system (Table 3).
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// A page address on a [`BlockDevice`].
pub type PageId = u64;

/// A fixed-page-size block device with IO accounting.
///
/// Pages are allocated append-only (index construction in this workspace
/// always lays data out explicitly, so a free list is unnecessary). The
/// trait is object-safe on purpose: backends are selected at runtime (see
/// [`StorageConfig`](crate::StorageConfig)) and erased behind
/// `Box<dyn BlockDevice>` inside the [`Pager`](crate::Pager).
///
/// `Send + Sync` are supertraits so indexes built over any device can be
/// handed to worker threads and *snapshots* of sealed indexes can be
/// shared behind an `Arc` (all page traffic still takes `&mut self`, so
/// `Sync` costs implementations nothing). Devices whose pages must be
/// shared between threads go through
/// [`SharedDevice`](crate::SharedDevice), which serializes the page
/// traffic while keeping per-handle IO classification exact.
pub trait BlockDevice: std::fmt::Debug + Send + Sync {
    /// Short backend name for reports ("sim" / "file" / "mmap").
    fn backend(&self) -> &'static str;

    /// Page size in bytes.
    fn page_size(&self) -> usize;

    /// Number of allocated pages.
    fn len_pages(&self) -> u64;

    /// Allocates `n` zeroed pages and returns the id of the first.
    /// Fallible because persistent backends extend their backing file here.
    fn allocate(&mut self, n: usize) -> Result<PageId, IndexError>;

    /// Overwrites a page, counting one (classified) write IO. `data` must be
    /// at most one page long; shorter data leaves the page tail zeroed.
    fn write_page(&mut self, id: PageId, data: &[u8]) -> Result<(), IndexError>;

    /// Reads a page into `buf` (which must be exactly one page long),
    /// counting one classified read IO.
    fn read_page_into(&mut self, id: PageId, buf: &mut [u8]) -> Result<(), IndexError>;

    /// Cumulative counters.
    fn stats(&self) -> IoStats;

    /// Resets counters (e.g. between construction and query phases) and
    /// forgets the head position so the next access is random.
    fn reset_stats(&mut self);

    /// Forgets the head position (forces the next access to count as
    /// random) without clearing counters. Used to model an interleaving
    /// access stream boundary.
    fn break_sequence(&mut self);

    /// Adds to the cache-hit counter. Called by the [`Pager`](crate::Pager)
    /// when a read is served from the buffer pool without touching the
    /// device.
    fn note_cache_hit(&mut self);

    /// Adds to the prefetched-page counter. Called by the pager when
    /// readahead fills a page (the classified device read is counted
    /// separately). Default: not tracked.
    fn note_prefetched(&mut self) {}

    /// Adds to the prefetch-hit counter (a cache hit landing on a
    /// readahead-filled page; called in addition to
    /// [`BlockDevice::note_cache_hit`]). Default: not tracked.
    fn note_prefetch_hit(&mut self) {}

    /// The shared [`PageCache`] this device advertises, if any. The
    /// [`Pager`](crate::Pager) attaches to it automatically on
    /// construction, switching from its private pool to the cross-query
    /// shared pool. Default: none — private devices keep the paper's
    /// cold-cache measurement model.
    fn shared_cache(&self) -> Option<Arc<PageCache>> {
        None
    }

    /// Flushes buffered writes to durable storage (no-op for memory-backed
    /// devices).
    fn sync(&mut self) -> Result<(), IndexError> {
        Ok(())
    }

    /// Device size in bytes.
    fn size_bytes(&self) -> u64 {
        self.len_pages() * self.page_size() as u64
    }
}

/// Bounds check shared by the backends.
pub(crate) fn check_page(id: PageId, pages: u64) -> Result<(), IndexError> {
    if id < pages {
        Ok(())
    } else {
        Err(IndexError::PageOutOfBounds { page: id, pages })
    }
}

/// Page-size sanity check shared by the backends.
pub(crate) fn check_page_size(page_size: usize) {
    assert!(page_size >= 64, "page size {page_size} unreasonably small");
}

/// Positioned full-buffer write shared by the file-backed devices
/// (`pwrite`-style on Unix, seek+write elsewhere).
pub(crate) fn pwrite_at(file: &mut std::fs::File, off: u64, buf: &[u8]) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.write_all_at(buf, off)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Seek, SeekFrom, Write};
        file.seek(SeekFrom::Start(off))?;
        file.write_all(buf)
    }
}

/// Positioned read shared by the file-backed devices; short reads past EOF
/// zero-fill the tail (sparse tails of partially written files), matching
/// the simulator.
pub(crate) fn pread_at(file: &mut std::fs::File, off: u64, buf: &mut [u8]) -> std::io::Result<()> {
    let n = {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            let mut filled = 0usize;
            loop {
                match file.read_at(&mut buf[filled..], off + filled as u64) {
                    Ok(0) => break filled,
                    Ok(k) => {
                        filled += k;
                        if filled == buf.len() {
                            break filled;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            file.seek(SeekFrom::Start(off))?;
            let mut filled = 0usize;
            loop {
                match file.read(&mut buf[filled..]) {
                    Ok(0) => break filled,
                    Ok(k) => {
                        filled += k;
                        if filled == buf.len() {
                            break filled;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
        }
    };
    buf[n..].fill(0);
    Ok(())
}
