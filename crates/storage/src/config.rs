//! Runtime backend selection: the factory behind `streach`'s storage
//! configuration.
//!
//! Indexes take their device as `Box<dyn BlockDevice>`; [`StorageConfig`]
//! is the one place that decides which concrete backend that box holds, so
//! benchmarks, examples, and applications can switch between the paper's
//! simulator and real files with a config value instead of code changes.

use crate::device::{BlockDevice, DEFAULT_PAGE_SIZE};
use crate::file::FileDevice;
use crate::mmap::MmapDevice;
use crate::sim::SimDevice;
use reach_core::IndexError;
use std::path::PathBuf;

/// Which [`BlockDevice`] implementation to construct.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StorageBackend {
    /// Memory-backed simulator (the paper's measurement model; nothing
    /// persists).
    Sim,
    /// Real file with positioned IO at the given path.
    File(PathBuf),
    /// Read-optimized memory-mapped-style device over the file at the given
    /// path.
    Mmap(PathBuf),
}

impl StorageBackend {
    /// Short name for reports ("sim" / "file" / "mmap").
    pub fn name(&self) -> &'static str {
        match self {
            StorageBackend::Sim => "sim",
            StorageBackend::File(_) => "file",
            StorageBackend::Mmap(_) => "mmap",
        }
    }
}

/// A complete storage recipe: backend plus page size.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StorageConfig {
    /// Backend to construct.
    pub backend: StorageBackend,
    /// Device page size in bytes.
    pub page_size: usize,
}

impl Default for StorageConfig {
    fn default() -> Self {
        Self::sim(DEFAULT_PAGE_SIZE)
    }
}

impl StorageConfig {
    /// Simulator-backed config.
    pub fn sim(page_size: usize) -> Self {
        Self {
            backend: StorageBackend::Sim,
            page_size,
        }
    }

    /// File-backed config.
    pub fn file(path: impl Into<PathBuf>, page_size: usize) -> Self {
        Self {
            backend: StorageBackend::File(path.into()),
            page_size,
        }
    }

    /// Mapped-device config.
    pub fn mmap(path: impl Into<PathBuf>, page_size: usize) -> Self {
        Self {
            backend: StorageBackend::Mmap(path.into()),
            page_size,
        }
    }

    /// Creates a fresh, empty device (truncating any existing file for the
    /// file-backed backends). Hand the result to an index *builder*.
    pub fn create(&self) -> Result<Box<dyn BlockDevice>, IndexError> {
        Ok(match &self.backend {
            StorageBackend::Sim => Box::new(SimDevice::new(self.page_size)),
            StorageBackend::File(path) => Box::new(FileDevice::create(path, self.page_size)?),
            StorageBackend::Mmap(path) => Box::new(MmapDevice::create(path, self.page_size)?),
        })
    }

    /// Opens an existing device holding previously built index data. Hand
    /// the result to an index *opener* (e.g. `ReachGraph::open`). The
    /// simulator has nothing to reopen and returns
    /// [`IndexError::Unsupported`].
    pub fn open(&self) -> Result<Box<dyn BlockDevice>, IndexError> {
        Ok(match &self.backend {
            StorageBackend::Sim => {
                return Err(IndexError::Unsupported(
                    "the sim backend is memory-only; nothing persists to reopen".into(),
                ))
            }
            StorageBackend::File(path) => Box::new(FileDevice::open(path, self.page_size)?),
            StorageBackend::Mmap(path) => Box::new(MmapDevice::open(path, self.page_size)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_model() {
        let c = StorageConfig::default();
        assert_eq!(c.backend, StorageBackend::Sim);
        assert_eq!(c.page_size, DEFAULT_PAGE_SIZE);
        let dev = c.create().unwrap();
        assert_eq!(dev.backend(), "sim");
        assert_eq!(dev.page_size(), DEFAULT_PAGE_SIZE);
    }

    #[test]
    fn sim_cannot_reopen() {
        assert!(matches!(
            StorageConfig::sim(4096).open(),
            Err(IndexError::Unsupported(_))
        ));
    }

    #[test]
    fn file_and_mmap_factories_produce_their_backends() {
        let mut path = std::env::temp_dir();
        path.push(format!("streach-config-{}.pages", std::process::id()));
        let cfg = StorageConfig::file(&path, 128);
        {
            let mut dev = cfg.create().unwrap();
            assert_eq!(dev.backend(), "file");
            let p = dev.allocate(1).unwrap();
            dev.write_page(p, b"x").unwrap();
            dev.sync().unwrap();
        }
        let reopened = cfg.open().unwrap();
        assert_eq!(reopened.len_pages(), 1);
        let mapped = StorageConfig::mmap(&path, 128).open().unwrap();
        assert_eq!(mapped.backend(), "mmap");
        assert_eq!(mapped.len_pages(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
