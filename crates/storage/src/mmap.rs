//! A read-optimized, memory-mapped-style block device.
//!
//! [`MmapDevice`] keeps the whole device image resident in memory and serves
//! reads from it without touching the OS per access — the query-time shape of
//! a shared read-only `mmap`. Because this workspace builds offline and
//! `reach_storage` is `#![forbid(unsafe_code)]`, the image is a plain
//! `Vec<u8>` populated once at [`MmapDevice::open`]; swapping in a real map
//! is a **one-file change**: replace the `image` field with
//! `memmap2::MmapMut` (and the explicit write-through in
//! [`BlockDevice::write_page`] with `flush_range`) — nothing outside this
//! module names the representation.
//!
//! Writes go through to the backing file immediately, so a device built on
//! `MmapDevice` persists exactly like one built on
//! [`FileDevice`](crate::FileDevice) and can be reopened by either backend.
//! IO accounting is identical to the other backends — the paper's cost model
//! measures *page accesses*, not syscalls, so a query costs the same counted
//! IO here as on the simulator.

use crate::device::{check_page, check_page_size, pwrite_at, BlockDevice, PageId};
use crate::iostats::{IoStats, IoTracker};
use reach_core::IndexError;
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};

/// Memory-resident image of a file-backed device, write-through on update.
#[derive(Debug)]
pub struct MmapDevice {
    file: File,
    path: PathBuf,
    page_size: usize,
    image: Vec<u8>,
    len_pages: u64,
    tracker: IoTracker,
}

impl MmapDevice {
    /// Creates (or truncates) the file at `path` as an empty device.
    pub fn create(path: impl AsRef<Path>, page_size: usize) -> Result<Self, IndexError> {
        check_page_size(page_size);
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| IndexError::io(&format!("create {}", path.display()), &e))?;
        Ok(Self {
            file,
            path,
            page_size,
            image: Vec::new(),
            len_pages: 0,
            tracker: IoTracker::new(),
        })
    }

    /// Opens an existing device file, mapping its full image into memory.
    pub fn open(path: impl AsRef<Path>, page_size: usize) -> Result<Self, IndexError> {
        check_page_size(page_size);
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| IndexError::io(&format!("open {}", path.display()), &e))?;
        let image = std::fs::read(&path)
            .map_err(|e| IndexError::io(&format!("map {}", path.display()), &e))?;
        if image.len() % page_size != 0 {
            return Err(IndexError::Corrupt(format!(
                "{}: file length {} is not a multiple of page size {page_size}",
                path.display(),
                image.len()
            )));
        }
        let len_pages = (image.len() / page_size) as u64;
        Ok(Self {
            file,
            path,
            page_size,
            image,
            len_pages,
            tracker: IoTracker::new(),
        })
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn page_range(&self, id: PageId) -> std::ops::Range<usize> {
        let start = id as usize * self.page_size;
        start..start + self.page_size
    }
}

impl BlockDevice for MmapDevice {
    fn backend(&self) -> &'static str {
        "mmap"
    }

    fn page_size(&self) -> usize {
        self.page_size
    }

    fn len_pages(&self) -> u64 {
        self.len_pages
    }

    fn allocate(&mut self, n: usize) -> Result<PageId, IndexError> {
        let first = self.len_pages;
        let new_len = self.len_pages + n as u64;
        // Keep the backing file the same length as the image so trailing
        // allocated-but-never-written pages survive a reopen by any backend.
        self.file
            .set_len(new_len * self.page_size as u64)
            .map_err(|e| IndexError::io(&format!("extend {}", self.path.display()), &e))?;
        self.len_pages = new_len;
        self.image
            .resize(self.len_pages as usize * self.page_size, 0);
        Ok(first)
    }

    fn write_page(&mut self, id: PageId, data: &[u8]) -> Result<(), IndexError> {
        assert!(
            data.len() <= self.page_size,
            "write of {} bytes exceeds page size {}",
            data.len(),
            self.page_size
        );
        check_page(id, self.len_pages)?;
        let range = self.page_range(id);
        let page = &mut self.image[range];
        page[..data.len()].copy_from_slice(data);
        page[data.len()..].fill(0);
        // Write-through so the backing file stays reopenable by any backend.
        let off = id * self.page_size as u64;
        let range = self.page_range(id);
        pwrite_at(&mut self.file, off, &self.image[range]).map_err(|e| {
            IndexError::io(&format!("write page {id} of {}", self.path.display()), &e)
        })?;
        self.tracker.note_write(id);
        Ok(())
    }

    fn read_page_into(&mut self, id: PageId, buf: &mut [u8]) -> Result<(), IndexError> {
        assert_eq!(buf.len(), self.page_size, "buffer must be one page long");
        check_page(id, self.len_pages)?;
        buf.copy_from_slice(&self.image[self.page_range(id)]);
        self.tracker.note_read(id);
        Ok(())
    }

    fn stats(&self) -> IoStats {
        self.tracker.stats()
    }

    fn reset_stats(&mut self) {
        self.tracker.reset();
    }

    fn break_sequence(&mut self) {
        self.tracker.break_sequence();
    }

    fn note_cache_hit(&mut self) {
        self.tracker.note_cache_hit();
    }

    fn note_prefetched(&mut self) {
        self.tracker.note_prefetched();
    }

    fn note_prefetch_hit(&mut self) {
        self.tracker.note_prefetch_hit();
    }

    fn sync(&mut self) -> Result<(), IndexError> {
        self.file
            .sync_all()
            .map_err(|e| IndexError::io(&format!("sync {}", self.path.display()), &e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileDevice;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "streach-mmapdev-{}-{tag}.pages",
            std::process::id()
        ));
        p
    }

    #[test]
    fn roundtrips_in_memory() {
        let path = temp_path("roundtrip");
        let mut d = MmapDevice::create(&path, 64).unwrap();
        let p = d.allocate(2).unwrap();
        d.write_page(p, b"alpha").unwrap();
        let mut buf = vec![0u8; 64];
        d.read_page_into(p, &mut buf).unwrap();
        assert_eq!(&buf[..5], b"alpha");
        d.read_page_into(p + 1, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        drop(d);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn writes_reach_the_file_and_cross_backends() {
        let path = temp_path("crossopen");
        {
            let mut d = MmapDevice::create(&path, 64).unwrap();
            let p = d.allocate(2).unwrap();
            d.write_page(p, b"one").unwrap();
            d.write_page(p + 1, b"two").unwrap();
            d.sync().unwrap();
        }
        // A FileDevice sees exactly what the mmap device wrote, and vice
        // versa.
        let mut f = FileDevice::open(&path, 64).unwrap();
        assert_eq!(f.len_pages(), 2);
        let mut buf = vec![0u8; 64];
        f.read_page_into(0, &mut buf).unwrap();
        assert_eq!(&buf[..3], b"one");
        drop(f);
        let mut m = MmapDevice::open(&path, 64).unwrap();
        m.read_page_into(1, &mut buf).unwrap();
        assert_eq!(&buf[..3], b"two");
        drop(m);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn accounting_matches_other_backends() {
        let path = temp_path("accounting");
        let mut d = MmapDevice::create(&path, 64).unwrap();
        d.allocate(4).unwrap();
        let mut buf = vec![0u8; 64];
        for i in 0..4 {
            d.read_page_into(i, &mut buf).unwrap();
        }
        assert_eq!(d.stats().random_reads, 1);
        assert_eq!(d.stats().seq_reads, 3);
        drop(d);
        let _ = std::fs::remove_file(&path);
    }
}
