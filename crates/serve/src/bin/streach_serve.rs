//! Serve a live reachability index from a synthetic contact stream.
//!
//! ```text
//! streach_serve [--backend=sim|file=DIR|mmap=DIR] [--workers=N]
//!               [--clients=N] [--queries=N] [--objects=N]
//!               [--contacts=N] [--queue=N] [--sharded=EPOCHS]
//!               [--cache=PAGES] [--metrics-out=PATH] [--metrics-json=PATH]
//!               [--trace=0|1] [--slow-reads=N]
//! ```
//!
//! The binary builds a `ConcurrentLive` index on the chosen backend,
//! ingests a deterministic xorshift contact stream on the main thread
//! (background compactions trigger off the delta budget), and serves a
//! query stream from `--clients` submitter threads through the
//! `reach_serve::Server` worker pool — appends, queries, and compactions
//! all overlap. It exits with a metrics table.
//!
//! `--sharded=EPOCHS` serves an epoch-sharded `ShardedLive` instead: the
//! ingested timeline is sealed into ~EPOCHS epoch shards (one device
//! each), queries hand their frontier across shard boundaries, and the
//! exit report shows the shard layout.
//!
//! `--metrics-out=PATH` (and/or `--metrics-json=PATH`) runs the server
//! *observed*: per-query trace spans feed a flight recorder and slow-query
//! log (`--trace=0` keeps metrics but disables span tracing;
//! `--slow-reads=N` sets the slow-query read threshold), and at exit the
//! unified registry — serve counters and histograms, live-index gauges,
//! page-cache counters, shard layout gauges, and the observability
//! self-metrics — is written as a Prometheus-style text exposition
//! (`--metrics-out`) and/or a JSON snapshot (`--metrics-json`).

use reach_core::{ObjectId, ReachIndex, ReachRequest, Time, TimeInterval};
use reach_graph::GraphParams;
use reach_live::{ConcurrentLive, LiveConfig, ShardedLive};
use reach_obs::{Obs, ObsConfig, SlowQueryPolicy};
use reach_serve::{ServeConfig, Server, SubmitError};
use reach_storage::{BuildBudget, CacheStats, StorageConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const PAGE: usize = 512;

struct Args {
    backend: StorageConfig,
    backend_name: String,
    workers: usize,
    clients: usize,
    queries: u64,
    objects: usize,
    contacts: usize,
    queue: usize,
    sharded: usize,
    cache_pages: usize,
    metrics_out: Option<String>,
    metrics_json: Option<String>,
    trace: bool,
    slow_reads: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        backend: StorageConfig::sim(PAGE),
        backend_name: "sim".into(),
        workers: 4,
        clients: 2,
        queries: 2000,
        objects: 64,
        contacts: 4000,
        queue: 256,
        sharded: 0,
        cache_pages: 256,
        metrics_out: None,
        metrics_json: None,
        trace: true,
        slow_reads: 1_000,
    };
    for arg in std::env::args().skip(1) {
        let (key, value) = arg
            .split_once('=')
            .ok_or_else(|| format!("expected --key=value, got `{arg}`"))?;
        let number = || -> Result<u64, String> {
            value
                .parse()
                .map_err(|_| format!("{key} wants a number, got `{value}`"))
        };
        match key {
            "--backend" => {
                args.backend_name = value.into();
                args.backend = if value == "sim" {
                    StorageConfig::sim(PAGE)
                } else if let Some(dir) = value.strip_prefix("file:") {
                    StorageConfig::file(dir, PAGE)
                } else if let Some(dir) = value.strip_prefix("mmap:") {
                    StorageConfig::mmap(dir, PAGE)
                } else {
                    return Err(format!(
                        "--backend wants sim, file:DIR, or mmap:DIR, got `{value}`"
                    ));
                };
            }
            "--workers" => args.workers = number()? as usize,
            "--clients" => args.clients = number()?.max(1) as usize,
            "--queries" => args.queries = number()?,
            "--objects" => args.objects = number()?.max(2) as usize,
            "--contacts" => args.contacts = number()? as usize,
            "--queue" => args.queue = number()?.max(1) as usize,
            "--sharded" => args.sharded = number()?.max(1) as usize,
            "--cache" => args.cache_pages = number()? as usize,
            "--metrics-out" => args.metrics_out = Some(value.into()),
            "--metrics-json" => args.metrics_json = Some(value.into()),
            "--trace" => args.trace = number()? != 0,
            "--slow-reads" => args.slow_reads = number()?,
            _ => return Err(format!("unknown flag `{key}`")),
        }
    }
    Ok(args)
}

/// Deterministic xorshift64* generator (no external dependency).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn contact_stream(
    seed: u64,
    objects: usize,
    count: usize,
    horizon: Time,
) -> Vec<reach_core::Contact> {
    let mut rng = Rng(seed | 1);
    let n = objects as u64;
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let a = rng.below(n) as u32;
        let mut b = rng.below(n) as u32;
        if a == b {
            b = (b + 1) % objects as u32;
        }
        let start = ((i as u64 * u64::from(horizon - 4)) / count as u64) as Time;
        let len = rng.below(3) as Time;
        out.push(reach_core::Contact::new(
            ObjectId(a),
            ObjectId(b),
            TimeInterval::new(start, (start + len).min(horizon - 1)),
        ));
    }
    out
}

fn build_index(args: &Args) -> Result<ConcurrentLive, reach_core::IndexError> {
    LiveConfig::graph(
        GraphParams {
            partition_depth: 8,
            page_size: PAGE,
            ..GraphParams::default()
        },
        BuildBudget::bytes(1 << 20),
    )
    .with_delta_budget(64 << 10)
    .with_lateness(8)
    .with_shared_cache(args.cache_pages)
    .builder()
    .backend(args.backend.clone())
    .serve(args.objects)
}

/// Builds the observability bundle when `--metrics-out`/`--metrics-json`
/// asked for one: tracing per `--trace`, slow-query threshold per
/// `--slow-reads` (wall-clock threshold stays disabled so the run is
/// deterministic modulo scheduling).
fn build_obs(args: &Args) -> Option<Arc<Obs>> {
    if args.metrics_out.is_none() && args.metrics_json.is_none() {
        return None;
    }
    Some(Arc::new(Obs::new(ObsConfig {
        trace: args.trace,
        slow: SlowQueryPolicy {
            min_reads: args.slow_reads,
            ..SlowQueryPolicy::default()
        },
        ..ObsConfig::default()
    })))
}

fn start_server(
    index: Arc<dyn ReachIndex>,
    args: &Args,
    obs: Option<&Arc<Obs>>,
) -> Result<Server, reach_core::IndexError> {
    let config = ServeConfig {
        workers: args.workers,
        queue_capacity: args.queue,
        max_batch: 64,
    };
    match obs {
        Some(obs) => Server::start_observed(index, config, Arc::clone(obs)),
        None => Server::start(index, config),
    }
}

/// Publishes the page-cache counters (if the index has a shared cache)
/// plus the recorder/slow-log self-metrics, then writes the exposition
/// and/or JSON snapshot files.
fn write_metrics(args: &Args, obs: &Obs, cache: Option<CacheStats>) {
    let registry = obs.registry();
    if let Some(c) = cache {
        registry.set_gauge("cache_hits", c.hits);
        registry.set_gauge("cache_misses", c.misses);
        registry.set_gauge("cache_prefetched", c.prefetched);
        registry.set_gauge("cache_prefetch_hits", c.prefetch_hits);
        registry.set_gauge("cache_evictions", c.evictions);
    }
    if let Some(recorder) = obs.recorder() {
        registry.set_gauge("obs_spans_recorded", recorder.recorded());
        registry.set_gauge("obs_recorder_bytes", recorder.bytes_recorded());
    }
    registry.set_gauge("obs_slow_queries", obs.slow_log().hits());
    if let Some(path) = &args.metrics_out {
        match std::fs::write(path, registry.expose_text()) {
            Ok(()) => println!("  metrics        exposition written to {path}"),
            Err(e) => eprintln!("streach_serve: writing {path} failed: {e}"),
        }
    }
    if let Some(path) = &args.metrics_json {
        match std::fs::write(path, registry.snapshot_json()) {
            Ok(()) => println!("  metrics        JSON snapshot written to {path}"),
            Err(e) => eprintln!("streach_serve: writing {path} failed: {e}"),
        }
    }
}

/// Runs the client submitter threads against the server while `ingest`
/// keeps appending on the calling thread; returns how many submissions
/// the clients shed at admission.
fn drive_clients<F: FnOnce()>(server: &Server, args: &Args, safe_horizon: Time, ingest: F) -> u64 {
    let submitted = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let queries = args.queries;
    let objects = args.objects as u64;
    std::thread::scope(|scope| {
        for client in 0..args.clients {
            let (submitted, shed) = (&submitted, &shed);
            scope.spawn(move || {
                // Each iteration submits a same-source burst (one object
                // asking about many peers — the access pattern the serving
                // path's batching optimization exists for), then waits the
                // burst out.
                const BURST: u64 = 8;
                let mut rng = Rng(0x0dd5_eed5 ^ (client as u64 + 1));
                loop {
                    let k = submitted.fetch_add(BURST, Ordering::Relaxed);
                    if k >= queries {
                        break;
                    }
                    let take = BURST.min(queries - k);
                    let source = ObjectId(rng.below(objects) as u32);
                    let t1 = rng.below(u64::from(safe_horizon)) as Time;
                    let window = TimeInterval::new(t1, safe_horizon);
                    let mut tickets = Vec::with_capacity(take as usize);
                    for _ in 0..take {
                        let dest = ObjectId(rng.below(objects) as u32);
                        match server.submit(ReachRequest::reach(source, window, dest)) {
                            Ok(ticket) => tickets.push(ticket),
                            Err(SubmitError::QueueFull { .. }) => {
                                shed.fetch_add(1, Ordering::Relaxed);
                                std::thread::yield_now();
                            }
                            Err(SubmitError::ShuttingDown) => return,
                        }
                    }
                    for ticket in tickets {
                        let _ = ticket.wait();
                    }
                }
            });
        }
        ingest();
    });
    shed.load(Ordering::Relaxed)
}

/// The `--sharded=EPOCHS` mode: an epoch-sharded timeline served through
/// the same worker pool — ingestion seals an epoch shard every
/// `contacts / EPOCHS` appends, queries walk the shards with a frontier
/// handoff, and the report shows the final shard layout.
fn run_sharded(args: &Args, horizon: Time) {
    let epochs = args.sharded.max(1);
    let index = match LiveConfig::graph(
        GraphParams {
            partition_depth: 8,
            page_size: PAGE,
            ..GraphParams::default()
        },
        BuildBudget::bytes(1 << 20),
    )
    .with_lateness(8)
    .with_shared_cache(args.cache_pages)
    .builder()
    .manual_compaction()
    .backend(args.backend.clone())
    .build_sharded(args.objects)
    {
        Ok(i) => Arc::new(i),
        Err(e) => {
            eprintln!("streach_serve: building the sharded index failed: {e}");
            std::process::exit(1);
        }
    };
    let stream = contact_stream(0x5eed_cafe, args.objects, args.contacts, horizon);
    let chunk = (stream.len() / epochs).max(1);
    let seal_boundary = |i: usize, index: &ShardedLive| {
        if (i + 1).is_multiple_of(chunk) {
            index.seal_now().expect("epoch seal");
        }
    };

    // Warm up with a third of the stream (sealing epoch shards along the
    // way) so queries walk real sealed shards, then serve while the rest
    // of the stream appends and seals concurrently.
    let warmup = stream.len() / 3;
    for (i, c) in stream[..warmup].iter().enumerate() {
        index.append(*c).expect("warmup append");
        seal_boundary(i, &index);
    }
    let obs = build_obs(args);
    let server = start_server(
        Arc::clone(&index) as Arc<dyn ReachIndex>,
        args,
        obs.as_ref(),
    )
    .expect("server starts");
    let safe_horizon = index.now().saturating_sub(1).max(1);
    let shed = drive_clients(&server, args, safe_horizon, || {
        for (i, c) in stream[warmup..].iter().enumerate() {
            index.append(*c).expect("live append");
            seal_boundary(warmup + i, &index);
        }
    });
    index.seal_now().expect("final seal");
    index.sync().expect("log sync");
    let stats = index.stats();
    let serve = server.metrics();
    if let Some(obs) = &obs {
        let registry = obs.registry();
        server.publish_metrics(registry);
        registry.set_gauge("live_compactions", stats.compactions);
        registry.set_gauge("live_watermark", u64::from(index.watermark()));
        registry.set_gauge("live_now", u64::from(index.now()));
        registry.set_gauge("shard_count", index.shard_spans().len() as u64);
        registry.set_gauge("shard_generation", index.generation());
    }
    drop(server);

    println!(
        "streach_serve: {} workers, {} clients, queue {}, backend {} (sharded)",
        args.workers, args.clients, args.queue, args.backend_name
    );
    println!(
        "  ingested       {} contacts -> watermark {} / horizon {} ({} seals, generation {})",
        args.contacts,
        index.watermark(),
        index.now(),
        stats.compactions,
        index.generation()
    );
    let spans = index.shard_spans();
    println!(
        "  shards         {} epochs: {}",
        spans.len(),
        spans
            .iter()
            .map(|(lo, hi)| format!("[{lo},{hi})"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!(
        "  queries        {} completed, {} failed, {} rejected at admission, {} shed by clients",
        serve.completed, serve.failed, serve.rejected, shed
    );
    println!(
        "  batching       {} answers served off a shared frontier expansion",
        serve.batched
    );
    println!(
        "  normalized IO  p50 {:.2}, p99 {:.2} (random + seq/{})",
        serve.p50_normalized_io,
        serve.p99_normalized_io,
        reach_core::SEQ_PER_RANDOM
    );
    if let Some(obs) = &obs {
        write_metrics(args, obs, index.cache_stats());
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("streach_serve: {e}");
            std::process::exit(2);
        }
    };
    let horizon: Time = 1 << 12;
    if args.sharded > 0 {
        run_sharded(&args, horizon);
        return;
    }
    let index = match build_index(&args) {
        Ok(i) => Arc::new(i),
        Err(e) => {
            eprintln!("streach_serve: building the index failed: {e}");
            std::process::exit(1);
        }
    };
    let stream = contact_stream(0x5eed_cafe, args.objects, args.contacts, horizon);

    // Warm up with a third of the stream and seal it, so queries exercise
    // the sealed base (and pay real counted IO), not just the delta.
    let warmup = stream.len() / 3;
    for c in &stream[..warmup] {
        index.append(*c).expect("warmup append");
    }
    index.compact_now().expect("warmup compaction");

    let obs = build_obs(&args);
    let server = start_server(
        Arc::clone(&index) as Arc<dyn ReachIndex>,
        &args,
        obs.as_ref(),
    )
    .expect("server starts");

    // Clients submit queries over the already-ingested prefix while the
    // main thread keeps appending (and the worker keeps compacting).
    let safe_horizon = index.now().saturating_sub(1).max(1);
    let shed = drive_clients(&server, &args, safe_horizon, || {
        for c in &stream[warmup..] {
            index.append(*c).expect("live append");
        }
    });

    // Each epoch carries a fresh cache, so read the counters before the
    // final compaction swaps in an empty one.
    let cache = index.cache_stats();
    if let Err(e) = index.compact_now() {
        eprintln!("streach_serve: final compaction failed: {e}");
    }
    index.sync().expect("log sync");
    let live = index.metrics();
    let serve = server.metrics();
    if let Some(obs) = &obs {
        let registry = obs.registry();
        server.publish_metrics(registry);
        registry.set_gauge("live_compactions", live.compactions);
        registry.set_gauge("live_epoch", live.epoch);
        registry.set_gauge("live_overlapped_queries", live.overlapped_queries);
        registry.set_gauge("live_delta_bytes", live.delta_bytes as u64);
        registry.set_gauge("live_watermark", u64::from(live.watermark));
        registry.set_gauge("live_now", u64::from(live.now));
    }
    drop(server);

    println!(
        "streach_serve: {} workers, {} clients, queue {}, backend {}",
        args.workers, args.clients, args.queue, args.backend_name
    );
    println!(
        "  ingested       {} contacts -> watermark {} / horizon {} ({} background compactions, epoch {})",
        args.contacts, live.watermark, live.now, live.compactions, live.epoch
    );
    println!(
        "  queries        {} completed, {} failed, {} rejected at admission, {} shed by clients",
        serve.completed, serve.failed, serve.rejected, shed
    );
    println!(
        "  batching       {} answers served off a shared frontier expansion",
        serve.batched
    );
    println!(
        "  overlap        {} queries completed while a compaction was building",
        live.overlapped_queries
    );
    println!(
        "  normalized IO  p50 {:.2}, p99 {:.2} (random + seq/{})",
        serve.p50_normalized_io,
        serve.p99_normalized_io,
        reach_core::SEQ_PER_RANDOM
    );
    if let Some(obs) = &obs {
        write_metrics(&args, obs, cache);
    }
}
