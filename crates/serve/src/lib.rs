//! Query serving over any [`ReachIndex`]: a bounded admission queue, a
//! worker pool, same-source batching, and live metrics.
//!
//! The concurrent live index (`reach_live::ConcurrentLive`) makes *query
//! evaluation* thread-safe; this crate adds the *service* around it — the
//! part of the ISSUE that turns a shared index into something a request
//! stream can hit:
//!
//! * **Admission control** — [`Server::submit`] enqueues onto a bounded
//!   queue and rejects immediately with [`SubmitError::QueueFull`] once
//!   the queue is at capacity. Backpressure is the caller's problem by
//!   design: a latency-bound service sheds load instead of buffering it.
//! * **Worker pool** — `workers` threads drain the queue concurrently.
//!   The index is held as `Arc<dyn ReachIndex>`, so anything behind the
//!   unified query trait serves unmodified: the concurrent live index
//!   natively, the build-once indexes through `Serial`.
//! * **Same-source batching** — when a worker dequeues a plain
//!   reachability or decay-weighted job it also drains every queued job
//!   with the same source, window, and kind and answers them through one
//!   batch call ([`ReachIndex::query_batch`] for `Reach` cohorts,
//!   [`ReachIndex::answer_batch`] for `Decay` cohorts): one frontier
//!   expansion serves the whole cohort. The expansion's IO lands on the
//!   first answer; the rest ride free (mirroring the contract of the
//!   underlying batch path). Top-k jobs never coalesce — each ranks the
//!   whole frontier already, so there is nothing to share per-destination.
//!   The semantics of every query kind are specified in the repository's
//!   `QUERIES.md`.
//! * **Metrics** — [`Server::metrics`] snapshots queue depth, in-flight
//!   and completed counts, rejections, batched answers, and p50/p99
//!   normalized IO per query (the paper's `random + seq/20` metric).
//!
//! Shutdown is graceful: dropping the [`Server`] stops admissions, lets
//! the workers drain what was already accepted, and joins them — no
//! accepted ticket is ever abandoned.
//!
//! The `streach_serve` binary (this crate's `src/bin`) wires the loop to
//! a live index fed by a synthetic contact stream; see README "Serving".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use reach_core::{
    Answer, IndexError, ObjectId, QueryKind, ReachIndex, ReachRequest, TimeInterval, SEQ_PER_RANDOM,
};
use reach_obs::{now_ticks, Histogram, Obs, Registry};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};

/// Service knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads draining the queue (minimum 1).
    pub workers: usize,
    /// Jobs the queue holds before [`Server::submit`] rejects.
    pub queue_capacity: usize,
    /// Most queries one [`ReachIndex::query_batch`] call may coalesce.
    pub max_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 256,
            max_batch: 64,
        }
    }
}

/// Why [`Server::submit`] refused a request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SubmitError {
    /// The bounded queue is at capacity; retry later or shed the query.
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// The server is shutting down and admits nothing new.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "serve queue full ({capacity} jobs)")
            }
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

impl From<SubmitError> for IndexError {
    fn from(e: SubmitError) -> Self {
        IndexError::Io(e.to_string())
    }
}

/// A pending answer: returned by [`Server::submit`], redeemed with
/// [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Answer, IndexError>>,
}

impl Ticket {
    /// Blocks until the worker pool answers. Accepted tickets are always
    /// answered, even across shutdown (drain-then-join).
    pub fn wait(self) -> Result<Answer, IndexError> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(IndexError::Io("serve worker dropped the reply".into())))
    }
}

/// One queued request plus its reply channel.
struct Job {
    request: ReachRequest,
    reply: mpsc::Sender<Result<Answer, IndexError>>,
    /// Admission tick ([`now_ticks`]), source of the queue-wait histogram.
    submitted: u64,
    /// Open `serve/queue` span covering admission-to-claim; dropped (and
    /// thereby recorded) the moment a worker claims the job. `None` on an
    /// untraced request.
    queue_span: Option<reach_obs::Span>,
}

/// Queue state behind the admission lock.
struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    index: Arc<dyn ReachIndex>,
    config: ServeConfig,
    queue: Mutex<QueueState>,
    work_ready: Condvar,
    in_flight: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    batched: AtomicU64,
    /// Normalized IO of every completed answer, recorded fixed-point as
    /// `random * 20 + seq` (exact, no floats on the hot path); source for
    /// the percentile gauges.
    io_hist: Arc<Histogram>,
    /// Microseconds each job waited in the queue before a worker claimed
    /// it (wall clock — excluded from the deterministic perf gate).
    queue_wait: Arc<Histogram>,
    /// Microseconds each job spent being evaluated (wall clock — excluded
    /// from the deterministic perf gate).
    service_time: Arc<Histogram>,
    /// Observability bundle, when started through
    /// [`Server::start_observed`]: mints per-query tracers and receives
    /// slow-query reports.
    obs: Option<Arc<Obs>>,
}

impl Shared {
    fn queue(&self) -> MutexGuard<'_, QueueState> {
        self.queue.lock().expect("serve queue poisoned")
    }

    fn record(&self, result: &Result<Answer, IndexError>) {
        match result {
            Ok(a) => {
                self.completed.fetch_add(1, Ordering::Relaxed);
                self.io_hist
                    .record(a.stats.random_ios * SEQ_PER_RANDOM + a.stats.seq_ios);
            }
            Err(_) => {
                self.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Feeds one served job into the wall-clock histograms and (when
    /// observed) the slow-query log.
    fn note_served(
        &self,
        job_request: &ReachRequest,
        result: &Result<Answer, IndexError>,
        waited_ns: u64,
        served_ns: u64,
    ) {
        self.queue_wait.record(waited_ns / 1_000);
        self.service_time.record(served_ns / 1_000);
        if let (Some(obs), Ok(a)) = (&self.obs, result) {
            obs.observe_query(
                job_request.trace.trace_id(),
                &job_request.trace_label(),
                a.stats.random_ios + a.stats.seq_ios,
                served_ns,
            );
        }
    }
}

/// Point-in-time service gauges (see [`Server::metrics`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeMetrics {
    /// Jobs admitted but not yet claimed by a worker.
    pub queue_depth: usize,
    /// Jobs a worker is evaluating right now.
    pub in_flight: u64,
    /// Answers delivered successfully.
    pub completed: u64,
    /// Requests that evaluated to an error.
    pub failed: u64,
    /// Requests refused at admission (queue full).
    pub rejected: u64,
    /// Answers served off another query's frontier expansion.
    pub batched: u64,
    /// Median normalized IO per completed query. Computed by nearest rank
    /// over the shared log-bucketed histogram: the reported value is the
    /// matching bucket's inclusive upper bound, an overestimate of the
    /// true rank value by at most 12.5 % (exact below 0.4 normalized IO).
    pub p50_normalized_io: f64,
    /// 99th-percentile normalized IO per completed query (same nearest-
    /// rank bound as [`ServeMetrics::p50_normalized_io`]).
    pub p99_normalized_io: f64,
    /// Median queue wait in microseconds (wall clock, admission to claim).
    pub p50_queue_wait_us: u64,
    /// 99th-percentile queue wait in microseconds.
    pub p99_queue_wait_us: u64,
    /// Median service time in microseconds (wall clock, claim to reply).
    pub p50_service_time_us: u64,
    /// 99th-percentile service time in microseconds.
    pub p99_service_time_us: u64,
}

/// A query service over any [`ReachIndex`] (see the module docs).
///
/// Dropping the server stops admissions, drains the accepted backlog, and
/// joins the workers.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("index", &self.shared.index.name())
            .field("workers", &self.workers.len())
            .field("metrics", &self.metrics())
            .finish()
    }
}

impl Server {
    /// Starts `config.workers` threads serving `index`.
    pub fn start(index: Arc<dyn ReachIndex>, config: ServeConfig) -> Result<Self, IndexError> {
        Self::launch(index, config, None)
    }

    /// Starts an *observed* server: per-query tracers are minted from
    /// `obs` at admission (when its config traces), the shared histograms
    /// register under `serve_*` in its registry, completed jobs feed its
    /// slow-query log, and a worker panic dumps its flight recorder to
    /// stderr before the panic propagates.
    pub fn start_observed(
        index: Arc<dyn ReachIndex>,
        config: ServeConfig,
        obs: Arc<Obs>,
    ) -> Result<Self, IndexError> {
        Self::launch(index, config, Some(obs))
    }

    fn launch(
        index: Arc<dyn ReachIndex>,
        config: ServeConfig,
        obs: Option<Arc<Obs>>,
    ) -> Result<Self, IndexError> {
        // When observed, the histograms live in the registry (so the
        // exposition sees them); otherwise they are private to the server.
        let (io_hist, queue_wait, service_time) = match &obs {
            Some(obs) => {
                let r = obs.registry();
                (
                    r.histogram("serve_normalized_io_x20"),
                    r.histogram("serve_queue_wait_us"),
                    r.histogram("serve_service_time_us"),
                )
            }
            None => Default::default(),
        };
        let shared = Arc::new(Shared {
            index,
            config,
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            in_flight: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            batched: AtomicU64::new(0),
            io_hist,
            queue_wait,
            service_time,
            obs,
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("streach-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(|e| IndexError::Io(format!("spawn serve worker: {e}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { shared, workers })
    }

    /// The index being served.
    pub fn index(&self) -> &Arc<dyn ReachIndex> {
        &self.shared.index
    }

    /// Admits one request, or rejects it if the queue is full. The
    /// returned [`Ticket`] blocks until a worker answers.
    pub fn submit(&self, mut request: ReachRequest) -> Result<Ticket, SubmitError> {
        // An observed server traces every admitted query that did not
        // arrive with a tracer of its own.
        if let Some(obs) = &self.shared.obs {
            if !request.trace.is_enabled() {
                request.trace = obs.tracer();
            }
        }
        let mut q = self.shared.queue();
        if q.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if q.jobs.len() >= self.shared.config.queue_capacity {
            drop(q);
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::QueueFull {
                capacity: self.shared.config.queue_capacity,
            });
        }
        let (tx, rx) = mpsc::channel();
        let queue_span = request.trace.is_enabled().then(|| {
            let mut s = request.trace.span("serve/queue");
            s.label_with(|| request.trace_label());
            s
        });
        q.jobs.push_back(Job {
            request,
            reply: tx,
            submitted: now_ticks(),
            queue_span,
        });
        drop(q);
        self.shared.work_ready.notify_one();
        Ok(Ticket { rx })
    }

    /// Submits a plain reachability query and waits for its answer
    /// (admission failures surface as [`IndexError::Io`]).
    pub fn query(
        &self,
        source: ObjectId,
        window: TimeInterval,
        dest: ObjectId,
    ) -> Result<Answer, IndexError> {
        self.submit(ReachRequest::reach(source, window, dest))?
            .wait()
    }

    /// Snapshots the service gauges. Percentiles are nearest-rank reads of
    /// the shared log-bucketed histograms (see the [`ServeMetrics`] field
    /// docs for the error bound); zero until something completes.
    pub fn metrics(&self) -> ServeMetrics {
        let queue_depth = self.shared.queue().jobs.len();
        let io = &self.shared.io_hist;
        ServeMetrics {
            queue_depth,
            in_flight: self.shared.in_flight.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            failed: self.shared.failed.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            batched: self.shared.batched.load(Ordering::Relaxed),
            p50_normalized_io: io.quantile(0.50) as f64 / SEQ_PER_RANDOM as f64,
            p99_normalized_io: io.quantile(0.99) as f64 / SEQ_PER_RANDOM as f64,
            p50_queue_wait_us: self.shared.queue_wait.quantile(0.50),
            p99_queue_wait_us: self.shared.queue_wait.quantile(0.99),
            p50_service_time_us: self.shared.service_time.quantile(0.50),
            p99_service_time_us: self.shared.service_time.quantile(0.99),
        }
    }

    /// Publishes the current service gauges into `registry` under
    /// `serve_*` names (the histograms are already registered there when
    /// the server was started observed — this adds the scalar gauges the
    /// exposition and JSON snapshot read).
    pub fn publish_metrics(&self, registry: &Registry) {
        let m = self.metrics();
        registry.set_gauge("serve_queue_depth", m.queue_depth as u64);
        registry.set_gauge("serve_in_flight", m.in_flight);
        registry.set_gauge("serve_completed", m.completed);
        registry.set_gauge("serve_failed", m.failed);
        registry.set_gauge("serve_rejected", m.rejected);
        registry.set_gauge("serve_batched", m.batched);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.queue().shutdown = true;
        self.shared.work_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Claims jobs until shutdown *and* an empty queue (accepted jobs are
/// always served). Each claim may pull a same-source cohort along.
fn worker_loop(shared: &Shared) {
    // If this worker panics, dump the flight recorder before unwinding:
    // the recent span events are exactly the context the panic destroys.
    struct PanicDump<'a>(&'a Shared);
    impl Drop for PanicDump<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                if let Some(rec) = self.0.obs.as_ref().and_then(|o| o.recorder()) {
                    eprintln!(
                        "streach serve worker panicked; flight recorder follows\n{}",
                        rec.dump_text()
                    );
                }
            }
        }
    }
    let _dump = PanicDump(shared);
    loop {
        let (mut job, mut cohort) = {
            let mut q = shared.queue();
            let job = loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.work_ready.wait(q).expect("serve queue poisoned");
            };
            let cohort = drain_cohort(&mut q, &job, shared.config.max_batch);
            (job, cohort)
        };
        // Claiming ends every queue-wait span: admission-to-claim is what
        // the queue-wait histogram measures.
        let claim = now_ticks();
        drop(job.queue_span.take());
        for j in cohort.iter_mut() {
            drop(j.queue_span.take());
        }
        let claimed = 1 + cohort.len() as u64;
        shared.in_flight.fetch_add(claimed, Ordering::Relaxed);
        if cohort.is_empty() {
            let result = {
                let mut serve_span = job.request.trace.span("serve/serve");
                serve_span.label_with(|| job.request.trace_label());
                shared.index.answer(&job.request)
            };
            let done = now_ticks();
            shared.record(&result);
            shared.note_served(
                &job.request,
                &result,
                claim.saturating_sub(job.submitted),
                done.saturating_sub(claim),
            );
            let _ = job.reply.send(result);
        } else {
            serve_batch(shared, job, cohort, claim);
        }
        shared.in_flight.fetch_sub(claimed, Ordering::Relaxed);
    }
}

/// Whether `kind` is a per-destination verdict a batch call can coalesce.
/// Top-k ranks the whole frontier per job, so cohorting it shares nothing.
fn batchable(kind: &QueryKind) -> bool {
    matches!(kind, QueryKind::Reach | QueryKind::Decay { .. })
}

/// Removes every queued batchable job sharing `job`'s source, window, and
/// kind (up to `max_batch` total), preserving queue order for the rest.
fn drain_cohort(q: &mut QueueState, job: &Job, max_batch: usize) -> Vec<Job> {
    let mut cohort = Vec::new();
    if !batchable(&job.request.kind) {
        return cohort;
    }
    let (source, window) = (job.request.query.source, job.request.query.interval);
    let mut i = 0;
    while i < q.jobs.len() && 1 + cohort.len() < max_batch {
        let r = &q.jobs[i].request;
        if r.kind == job.request.kind && r.query.source == source && r.query.interval == window {
            cohort.push(q.jobs.remove(i).expect("index checked above"));
        } else {
            i += 1;
        }
    }
    cohort
}

/// Answers a same-source cohort through one batch call: `query_batch` for
/// plain reachability, the kind-aware `answer_batch` for decay cohorts.
///
/// The leader's trace records a `serve/cohort` span carrying the cohort
/// size as its seed count; decay cohorts additionally nest per-destination
/// dispatch spans under it (the kind-aware batch path evaluates through
/// `answer`), while `Reach` cohorts share one untraced frontier expansion
/// whose IO lands on the first answer.
fn serve_batch(shared: &Shared, job: Job, cohort: Vec<Job>, claim: u64) {
    let template = job.request.clone();
    let mut cohort_span = template.trace.span("serve/cohort");
    cohort_span.set_seeds(1 + cohort.len() as u64);
    cohort_span.label_with(|| format!("{} x{}", template.trace_label(), 1 + cohort.len()));
    let jobs: Vec<Job> = std::iter::once(job).chain(cohort).collect();
    let dests: Vec<ObjectId> = jobs.iter().map(|j| j.request.query.dest).collect();
    let batch = match template.kind {
        QueryKind::Reach => {
            shared
                .index
                .query_batch(template.query.source, template.query.interval, &dests)
        }
        _ => shared.index.answer_batch(&template, &dests),
    };
    cohort_span.finish();
    let done = now_ticks();
    match batch {
        Ok(answers) => {
            debug_assert_eq!(answers.len(), jobs.len());
            shared
                .batched
                .fetch_add(jobs.len() as u64 - 1, Ordering::Relaxed);
            for (j, a) in jobs.into_iter().zip(answers) {
                let result = Ok(a);
                shared.record(&result);
                shared.note_served(
                    &j.request,
                    &result,
                    claim.saturating_sub(j.submitted),
                    done.saturating_sub(claim),
                );
                let _ = j.reply.send(result);
            }
        }
        Err(e) => {
            // A cohort-wide failure (e.g. the window slid past the
            // horizon) reports to every member.
            for j in jobs {
                let result = Err(e.clone());
                shared.record(&result);
                shared.note_served(
                    &j.request,
                    &result,
                    claim.saturating_sub(j.submitted),
                    done.saturating_sub(claim),
                );
                let _ = j.reply.send(result);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_core::{IndexError, Query, QueryOutcome, QueryResult, QueryStats};
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    /// Reachable iff `source < dest`; counts point and batch calls and can
    /// hold every worker at a gate to make queueing deterministic.
    #[derive(Debug, Default)]
    struct Probe {
        point_calls: AtomicU64,
        batch_calls: AtomicU64,
        entered: AtomicU64,
        gate: AtomicBool,
    }

    impl Probe {
        fn verdict(q: &Query) -> Answer {
            Answer::from(QueryResult {
                outcome: if q.source.0 < q.dest.0 {
                    QueryOutcome::reachable_at(q.interval.start)
                } else {
                    QueryOutcome::UNREACHABLE
                },
                stats: QueryStats {
                    random_ios: u64::from(q.dest.0),
                    ..QueryStats::default()
                },
            })
        }

        fn hold(&self) {
            while self.gate.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    impl ReachIndex for Probe {
        fn name(&self) -> &'static str {
            "Probe"
        }

        fn answer(&self, request: &ReachRequest) -> Result<Answer, IndexError> {
            if !batchable(&request.kind) {
                return Err(request.unsupported(self.name()));
            }
            self.entered.fetch_add(1, Ordering::Release);
            self.hold();
            self.point_calls.fetch_add(1, Ordering::Relaxed);
            Ok(Self::verdict(&request.query))
        }

        fn answer_batch(
            &self,
            template: &ReachRequest,
            dests: &[ObjectId],
        ) -> Result<Vec<Answer>, IndexError> {
            self.entered.fetch_add(1, Ordering::Release);
            self.hold();
            self.batch_calls.fetch_add(1, Ordering::Relaxed);
            Ok(dests
                .iter()
                .map(|&d| {
                    Self::verdict(&Query::new(
                        template.query.source,
                        d,
                        template.query.interval,
                    ))
                })
                .collect())
        }

        fn query_batch(
            &self,
            source: ObjectId,
            window: TimeInterval,
            dests: &[ObjectId],
        ) -> Result<Vec<Answer>, IndexError> {
            self.entered.fetch_add(1, Ordering::Release);
            self.hold();
            self.batch_calls.fetch_add(1, Ordering::Relaxed);
            Ok(dests
                .iter()
                .map(|&d| Self::verdict(&Query::new(source, d, window)))
                .collect())
        }
    }

    fn server(probe: &Arc<Probe>, config: ServeConfig) -> Server {
        Server::start(Arc::clone(probe) as Arc<dyn ReachIndex>, config).expect("server starts")
    }

    #[test]
    fn answers_flow_through_the_pool() {
        let probe = Arc::new(Probe::default());
        let srv = server(&probe, ServeConfig::default());
        let w = TimeInterval::new(0, 9);
        let tickets: Vec<Ticket> = (0..8u32)
            .map(|d| {
                srv.submit(ReachRequest::reach(
                    ObjectId(0),
                    TimeInterval::new(d, d + 1),
                    ObjectId(d),
                ))
                .expect("admitted")
            })
            .collect();
        for (d, t) in tickets.into_iter().enumerate() {
            let a = t.wait().expect("answered");
            assert_eq!(a.reachable(), 0 < d as u32);
        }
        assert!(srv
            .query(ObjectId(1), w, ObjectId(3))
            .expect("query")
            .reachable());
        let m = srv.metrics();
        assert_eq!(m.completed, 9);
        assert_eq!(m.rejected, 0);
    }

    #[test]
    fn full_queue_rejects_at_admission() {
        let probe = Arc::new(Probe::default());
        probe.gate.store(true, Ordering::Release);
        let srv = server(
            &probe,
            ServeConfig {
                workers: 1,
                queue_capacity: 2,
                max_batch: 1,
            },
        );
        let w = TimeInterval::new(0, 5);
        // The gated worker claims one job; two more fill the queue; the
        // next admission must be refused without blocking.
        let mut tickets = Vec::new();
        let mut rejected = None;
        for d in 1..10u32 {
            match srv.submit(ReachRequest::reach(ObjectId(0), w, ObjectId(d))) {
                Ok(t) => tickets.push(t),
                Err(e) => {
                    rejected = Some(e);
                    break;
                }
            }
            // Let the worker claim the first job so capacity is exact.
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(rejected, Some(SubmitError::QueueFull { capacity: 2 }));
        assert!(srv.metrics().rejected >= 1);
        probe.gate.store(false, Ordering::Release);
        for t in tickets {
            t.wait().expect("gated jobs answered after release");
        }
    }

    #[test]
    fn same_source_jobs_coalesce_into_one_batch() {
        let probe = Arc::new(Probe::default());
        probe.gate.store(true, Ordering::Release);
        let srv = server(
            &probe,
            ServeConfig {
                workers: 1,
                queue_capacity: 64,
                max_batch: 64,
            },
        );
        let w = TimeInterval::new(0, 9);
        // Plug the single worker: submit one foreign-source job and wait
        // until the worker is provably inside it, so the whole cohort
        // queues up behind the gate and must coalesce into one batch.
        let foreign = srv
            .submit(ReachRequest::reach(ObjectId(7), w, ObjectId(1)))
            .expect("admitted");
        while probe.entered.load(Ordering::Acquire) == 0 {
            std::thread::yield_now();
        }
        let tickets: Vec<Ticket> = (1..6u32)
            .map(|d| {
                srv.submit(ReachRequest::reach(ObjectId(0), w, ObjectId(d)))
                    .expect("admitted")
            })
            .collect();
        probe.gate.store(false, Ordering::Release);
        for (i, t) in tickets.into_iter().enumerate() {
            let a = t.wait().expect("cohort answered");
            assert!(a.reachable(), "0 -> {} in cohort", i + 1);
        }
        assert!(!foreign.wait().expect("foreign answered").reachable());
        let m = srv.metrics();
        // The plug is a point call; the five-job cohort coalesces.
        assert_eq!(m.batched, 4, "batched = {}", m.batched);
        assert_eq!(probe.batch_calls.load(Ordering::Relaxed), 1);
        assert_eq!(m.completed, 6);
    }

    #[test]
    fn decay_jobs_coalesce_through_answer_batch() {
        let probe = Arc::new(Probe::default());
        probe.gate.store(true, Ordering::Release);
        let srv = server(
            &probe,
            ServeConfig {
                workers: 1,
                queue_capacity: 64,
                max_batch: 64,
            },
        );
        let w = TimeInterval::new(0, 9);
        let model = reach_core::DecayModel::per_transfer(0.5);
        // Plug the single worker so the decay cohort queues behind the gate.
        let foreign = srv
            .submit(ReachRequest::reach(ObjectId(7), w, ObjectId(1)))
            .expect("admitted");
        while probe.entered.load(Ordering::Acquire) == 0 {
            std::thread::yield_now();
        }
        let tickets: Vec<Ticket> = (1..6u32)
            .map(|d| {
                srv.submit(ReachRequest::decay(
                    ObjectId(0),
                    w,
                    ObjectId(d),
                    0.25,
                    model,
                ))
                .expect("admitted")
            })
            .collect();
        probe.gate.store(false, Ordering::Release);
        for (i, t) in tickets.into_iter().enumerate() {
            let a = t.wait().expect("cohort answered");
            assert!(a.reachable(), "0 -> {} in decay cohort", i + 1);
        }
        assert!(!foreign.wait().expect("foreign answered").reachable());
        let m = srv.metrics();
        assert_eq!(m.batched, 4, "batched = {}", m.batched);
        assert_eq!(probe.batch_calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn percentiles_track_completed_io() {
        let probe = Arc::new(Probe::default());
        let srv = server(
            &probe,
            ServeConfig {
                workers: 2,
                queue_capacity: 256,
                max_batch: 1,
            },
        );
        // random_ios == dest id, so the sample set is 1..=100.
        let tickets: Vec<Ticket> = (1..=100u32)
            .map(|d| {
                srv.submit(ReachRequest::reach(
                    ObjectId(0),
                    TimeInterval::new(d, d + 1),
                    ObjectId(d),
                ))
                .expect("admitted")
            })
            .collect();
        for t in tickets {
            t.wait().expect("answered");
        }
        let m = srv.metrics();
        assert_eq!(m.completed, 100);
        assert!(
            (m.p50_normalized_io - 51.0).abs() <= 1.0,
            "p50 = {}",
            m.p50_normalized_io
        );
        assert!(m.p99_normalized_io >= 99.0, "p99 = {}", m.p99_normalized_io);
    }

    #[test]
    fn shutdown_drains_accepted_jobs() {
        let probe = Arc::new(Probe::default());
        probe.gate.store(true, Ordering::Release);
        let srv = server(
            &probe,
            ServeConfig {
                workers: 1,
                queue_capacity: 16,
                max_batch: 1,
            },
        );
        let w = TimeInterval::new(0, 5);
        let tickets: Vec<Ticket> = (1..5u32)
            .map(|d| {
                srv.submit(ReachRequest::reach(ObjectId(0), w, ObjectId(d)))
                    .expect("admitted")
            })
            .collect();
        let probe2 = Arc::clone(&probe);
        let release = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            probe2.gate.store(false, Ordering::Release);
        });
        drop(srv); // blocks until the backlog drains
        release.join().expect("release thread");
        for t in tickets {
            t.wait().expect("accepted ticket answered across shutdown");
        }
    }

    #[test]
    fn observed_server_mints_tracers_and_feeds_the_registry() {
        let probe = Arc::new(Probe::default());
        let obs = Arc::new(reach_obs::Obs::default());
        let srv = Server::start_observed(
            Arc::clone(&probe) as Arc<dyn ReachIndex>,
            ServeConfig::default(),
            Arc::clone(&obs),
        )
        .expect("observed server starts");
        for d in 1..=20u32 {
            srv.query(ObjectId(0), TimeInterval::new(0, 9), ObjectId(d))
                .expect("answered");
        }
        // Minted tracers mirror finished spans into the flight recorder.
        let rec = obs.recorder().expect("default bundle has a recorder");
        assert!(rec.recorded() > 0, "serve spans reached the recorder");
        // The shared histograms live in the registry and saw every answer.
        let io = obs.registry().histogram("serve_normalized_io_x20");
        assert_eq!(io.count(), 20);
        assert_eq!(
            obs.registry().histogram("serve_service_time_us").count(),
            20
        );
        assert_eq!(obs.registry().histogram("serve_queue_wait_us").count(), 20);
        // Publishing makes the scalar gauges visible in the exposition.
        srv.publish_metrics(obs.registry());
        let text = obs.registry().expose_text();
        assert!(text.contains("serve_completed 20"), "{text}");
        assert!(text.contains("serve_normalized_io_x20_count 20"), "{text}");
    }

    #[test]
    fn caller_supplied_tracer_sees_the_serve_span_tree() {
        let probe = Arc::new(Probe::default());
        let srv = server(&probe, ServeConfig::default());
        let t = reach_obs::Tracer::enabled(99);
        let req = ReachRequest::reach(ObjectId(0), TimeInterval::new(0, 9), ObjectId(5))
            .with_trace(t.clone());
        srv.submit(req).expect("admitted").wait().expect("answered");
        let names: Vec<&str> = t.events().iter().map(|e| e.name).collect();
        assert!(names.contains(&"serve/queue"), "{names:?}");
        assert!(names.contains(&"serve/serve"), "{names:?}");
        let events = t.events();
        let queue = events.iter().find(|e| e.name == "serve/queue").unwrap();
        let serve = events.iter().find(|e| e.name == "serve/serve").unwrap();
        assert_eq!(queue.parent, 0, "queue span is a root");
        assert_eq!(serve.parent, 0, "serve span is a sibling, not a child");
        assert!(queue.label.contains("reach 0->5"), "{}", queue.label);
    }

    #[test]
    fn wall_clock_percentiles_populate_after_service() {
        let probe = Arc::new(Probe::default());
        let srv = server(&probe, ServeConfig::default());
        for d in 1..=10u32 {
            srv.query(ObjectId(0), TimeInterval::new(0, 9), ObjectId(d))
                .expect("answered");
        }
        let m = srv.metrics();
        // Wall-clock values are nondeterministic; only shape is asserted.
        assert!(m.p99_queue_wait_us >= m.p50_queue_wait_us);
        assert!(m.p99_service_time_us >= m.p50_service_time_us);
    }

    #[test]
    fn foreign_kinds_report_per_job() {
        let probe = Arc::new(Probe::default());
        let srv = server(&probe, ServeConfig::default());
        let req = ReachRequest::reach(ObjectId(0), TimeInterval::new(0, 1), ObjectId(1))
            .with_kind(QueryKind::NonImmediate);
        let err = srv
            .submit(req)
            .expect("admitted")
            .wait()
            .expect_err("kind unsupported");
        assert!(matches!(err, IndexError::Unsupported(_)), "{err}");
        assert_eq!(srv.metrics().failed, 1);
    }
}
