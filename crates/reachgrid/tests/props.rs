//! Property tests for ReachGrid's structural pieces: grid geometry, cell
//! records, and the index layout.

use proptest::prelude::*;
use reach_core::{Environment, ObjectId, Point};
use reach_grid::{CellData, ChunkLayout, GridGeometry, GridParams, ReachGrid};
use reach_mobility::RwpConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every point maps to exactly one cell, and that cell is always among
    /// the cells returned by a neighborhood probe around the point.
    #[test]
    fn geometry_cell_mapping_consistent(
        w in 50.0f32..5000.0,
        h in 50.0f32..5000.0,
        cell in 10.0f32..2000.0,
        x in 0.0f32..5000.0,
        y in 0.0f32..5000.0,
        margin in 0.0f32..500.0,
    ) {
        let g = GridGeometry::new(w, h, cell);
        let p = Point::new(x.min(w), y.min(h));
        let home = g.cell_of(p);
        prop_assert!(home < g.num_cells());
        let mut around = Vec::new();
        g.cells_around(p, margin, &mut around);
        prop_assert!(around.contains(&home), "home cell missing from probe");
        for &c in &around {
            prop_assert!(c < g.num_cells());
        }
        // Probe set grows monotonically with the margin.
        let mut wider = Vec::new();
        g.cells_around(p, margin + cell, &mut wider);
        for c in &around {
            prop_assert!(wider.contains(c), "wider probe lost a cell");
        }
    }

    /// Chunk windows partition the horizon exactly.
    #[test]
    fn chunk_windows_partition_horizon(temporal in 1u32..100, horizon in 1u32..5000) {
        let l = ChunkLayout { temporal, horizon };
        let mut covered = 0u64;
        let mut expected_start = 0u32;
        for j in 0..l.num_chunks() {
            let w = l.window(j);
            prop_assert_eq!(w.start, expected_start, "gap before chunk {}", j);
            covered += w.len();
            expected_start = w.end + 1;
            // Every tick of the window maps back to this chunk.
            prop_assert_eq!(l.chunk_of(w.start), j);
            prop_assert_eq!(l.chunk_of(w.end), j);
        }
        prop_assert_eq!(covered, u64::from(horizon));
    }

    /// Cell records round-trip for arbitrary contents.
    #[test]
    fn cell_records_roundtrip(
        objects in prop::collection::vec(
            (0u32..1000, prop::collection::vec((0.0f32..1e4, 0.0f32..1e4), 1..30)),
            0..20,
        )
    ) {
        let cell = CellData {
            objects: objects
                .into_iter()
                .map(|(o, ps)| {
                    (
                        ObjectId(o),
                        ps.into_iter().map(|(x, y)| Point::new(x, y)).collect(),
                    )
                })
                .collect(),
        };
        let decoded = CellData::decode(&cell.encode()).expect("roundtrip decodes");
        prop_assert_eq!(decoded, cell);
    }

    /// Index construction invariants hold across parameter space: every
    /// object has a directory entry pointing at a stored, non-empty cell
    /// containing its full chunk segment.
    #[test]
    fn directory_always_points_at_a_populated_cell(
        seed in 0u64..100,
        temporal in prop::sample::select(vec![3u32, 7, 16]),
        cell in prop::sample::select(vec![40.0f32, 120.0, 400.0]),
    ) {
        let store = RwpConfig {
            env: Environment::square(400.0),
            num_objects: 8,
            horizon: 40,
            tick_seconds: 6.0,
            speed_min: 1.0,
            speed_max: 2.0,
            pause_ticks_max: 1,
        }
        .generate(seed);
        let mut grid = ReachGrid::build(
            &store,
            GridParams {
                temporal,
                cell_size: cell,
                threshold: 25.0,
                cache_pages: 16,
                page_size: 256,
            },
        )
        .expect("builds");
        for j in 0..grid.layout().num_chunks() {
            let window = grid.layout().window(j);
            for o in 0..8u32 {
                let c = grid.dir_lookup_for_tests(j, ObjectId(o)).expect("lookup succeeds");
                let ptr = grid
                    .chunk(j)
                    .cell_ptr(c)
                    .expect("directory cell must be stored");
                let data = grid.read_cell_for_tests(ptr).expect("cell decodes");
                let entry = data
                    .objects
                    .iter()
                    .find(|(obj, _)| *obj == ObjectId(o))
                    .expect("object present in its directory cell");
                prop_assert_eq!(entry.1.len() as u64, window.len(), "segment must span the chunk");
            }
        }
    }
}
