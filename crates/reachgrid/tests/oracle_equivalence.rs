//! ReachGrid and SPJ must agree with the brute-force oracle on randomized
//! mobility datasets across grid resolutions.

use proptest::prelude::*;
use reach_contact::Oracle;
use reach_core::{ObjectId, Query, ReachabilityIndex, TimeInterval};
use reach_grid::{GridParams, ReachGrid, Spj};
use reach_mobility::{RwpConfig, WorkloadConfig};
use reach_traj::TrajectoryStore;

fn dataset(seed: u64, n: usize, horizon: u32) -> TrajectoryStore {
    RwpConfig {
        env: reach_core::Environment::square(300.0),
        num_objects: n,
        horizon,
        tick_seconds: 6.0,
        speed_min: 1.0,
        speed_max: 4.0,
        pause_ticks_max: 2,
    }
    .generate(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn reachgrid_matches_oracle(
        seed in 0u64..1000,
        temporal in prop::sample::select(vec![4u32, 7, 10, 20]),
        cell in prop::sample::select(vec![40.0f32, 75.0, 150.0, 400.0]),
    ) {
        let store = dataset(seed, 8, 60);
        let threshold = 25.0;
        let oracle = Oracle::build(&store, threshold);
        let mut grid = ReachGrid::build(
            &store,
            GridParams {
                temporal,
                cell_size: cell,
                threshold,
                cache_pages: 64,
                page_size: 256,
            },
        ).unwrap();
        let queries = WorkloadConfig {
            num_queries: 30,
            interval_len_min: 5,
            interval_len_max: 50,
        }
        .generate(8, 60, seed ^ 0xABCD);
        for q in &queries {
            let expected = oracle.evaluate(q);
            let got = grid.evaluate_query(q).unwrap();
            prop_assert_eq!(
                got.outcome.reachable, expected.reachable,
                "grid mismatch on {} (seed {}, RT {}, RS {})", q, seed, temporal, cell
            );
            if expected.reachable {
                prop_assert_eq!(
                    got.outcome.earliest, expected.earliest,
                    "earliest-arrival mismatch on {}", q
                );
            }
            let spj = Spj::new(&mut grid).evaluate_query(q).unwrap();
            prop_assert_eq!(
                spj.outcome.reachable, expected.reachable,
                "SPJ mismatch on {} (seed {})", q, seed
            );
        }
    }
}

#[test]
fn batch_workload_sanity_on_denser_world() {
    // A denser deterministic check with the default-style parameters.
    let store = dataset(7, 16, 120);
    let threshold = 30.0;
    let oracle = Oracle::build(&store, threshold);
    let mut grid = ReachGrid::build(
        &store,
        GridParams {
            temporal: 20,
            cell_size: 100.0,
            threshold,
            cache_pages: 64,
            page_size: 512,
        },
    )
    .unwrap();
    let queries = WorkloadConfig {
        num_queries: 60,
        interval_len_min: 10,
        interval_len_max: 100,
    }
    .generate(16, 120, 99);
    let mut reachable = 0;
    for q in &queries {
        let expected = oracle.evaluate(q).reachable;
        let got = grid.evaluate(q).unwrap().reachable();
        assert_eq!(got, expected, "query {q}");
        reachable += usize::from(got);
    }
    // The workload must exercise both outcomes to be meaningful.
    assert!(reachable > 0, "no reachable queries in the batch");
    assert!(reachable < queries.len(), "every query reachable");
}

#[test]
fn source_in_motion_across_chunk_boundaries() {
    // Regression guard: seeds crossing chunk boundaries must be relocated
    // via the directory, including seeds discovered mid-chunk.
    let store = dataset(3, 10, 80);
    let threshold = 40.0;
    let oracle = Oracle::build(&store, threshold);
    let mut grid = ReachGrid::build(
        &store,
        GridParams {
            temporal: 7, // deliberately unaligned with interval starts
            cell_size: 60.0,
            threshold,
            cache_pages: 64,
            page_size: 256,
        },
    )
    .unwrap();
    for s in 0..10u32 {
        for d in 0..10u32 {
            let q = Query::new(ObjectId(s), ObjectId(d), TimeInterval::new(13, 66));
            assert_eq!(
                grid.evaluate_query(&q).unwrap().reachable(),
                oracle.evaluate(&q).reachable,
                "query {q}"
            );
        }
    }
}
