//! # reach-grid
//!
//! The **ReachGrid** index (paper §4): a spatiotemporal grid over the raw
//! trajectory data that enables *guided, incremental* expansion of the
//! contact network at query time.
//!
//! * [`GridParams`] — temporal (`R_T`) and spatial (`R_S`) resolutions plus
//!   storage knobs;
//! * [`ReachGrid`] — construction + disk placement (§4.1) and Algorithm 1
//!   query processing (§4.2);
//! * [`Spj`] — the naïve full-scan baseline sharing the same layout
//!   (§6.1.2).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cells;
pub mod index;
pub mod params;
pub mod query;
pub mod spj;

pub use cells::{CellData, ChunkLayout, GridGeometry};
pub use index::{ChunkMeta, ReachGrid};
pub use params::GridParams;
pub use spj::Spj;
