//! ReachGrid query processing — Algorithm 1 of the paper (§4.2).
//!
//! The evaluator sweeps the query interval chunk by chunk, maintaining the
//! *seed set* (objects already reachable from the query source). Per chunk it
//! loads only the cells containing seeds plus the `d_T`-inflated neighbor
//! cells (`N_i`, the potential-seed cells), advances tick by tick, closes
//! over same-tick contact chains, and terminates as soon as the destination
//! becomes a seed. Cell buffers are discarded at chunk boundaries, exactly as
//! the paper prescribes.

use crate::cells::CellData;
use crate::index::ReachGrid;
use reach_core::{
    IndexError, ObjectId, Point, Query, QueryOutcome, QueryResult, QueryStats, ReachabilityIndex,
    Time, TimeInterval,
};
use reach_traj::SpatialHash;
use std::collections::BTreeMap;
use std::time::Instant;

/// Per-chunk working state of Algorithm 1.
struct ChunkState {
    /// Chunk tick window (unclipped), for sample indexing.
    chunk_start: Time,
    /// Decoded cells, keyed by cell id. Ordered map: iteration order feeds
    /// the probe loop, and a deterministic order keeps query IO accounting
    /// reproducible across runs and storage backends.
    loaded: BTreeMap<u32, CellData>,
    /// Chunk segments of current seeds (samples indexed from `chunk_start`).
    /// Ordered for the same reason.
    seed_segs: BTreeMap<u32, Vec<Point>>,
    /// Seeds whose neighborhood cells still need loading this tick.
    pending: Vec<u32>,
}

impl ReachGrid {
    /// Evaluates a reachability query with guided expansion (Algorithm 1).
    pub fn evaluate_query(&mut self, q: &Query) -> Result<QueryResult, IndexError> {
        let started = Instant::now();
        self.pager.clear_cache();
        self.pager.break_sequence();
        let before = self.pager.stats();
        let mut stats = QueryStats::default();

        let outcome = self.run_query(q, &mut stats)?;

        let io = self.pager.stats().since(&before);
        stats.random_ios = io.random_reads;
        stats.seq_ios = io.seq_reads;
        stats.cpu = started.elapsed();
        Ok(QueryResult { outcome, stats })
    }

    fn run_query(&mut self, q: &Query, stats: &mut QueryStats) -> Result<QueryOutcome, IndexError> {
        let horizon = self.horizon();
        if q.source.index() >= self.num_objects() {
            return Err(IndexError::UnknownObject(q.source));
        }
        if q.dest.index() >= self.num_objects() {
            return Err(IndexError::UnknownObject(q.dest));
        }
        if q.interval.start >= horizon {
            return Err(IndexError::IntervalOutOfRange {
                requested: q.interval,
                horizon,
            });
        }
        if q.source == q.dest {
            return Ok(QueryOutcome::reachable_at(q.interval.start));
        }
        let interval = TimeInterval::new(q.interval.start, q.interval.end.min(horizon - 1));

        let mut is_seed = vec![false; self.num_objects()];
        is_seed[q.source.index()] = true;
        let mut seed_list: Vec<u32> = vec![q.source.0];

        let first_chunk = self.layout.chunk_of(interval.start);
        let last_chunk = self.layout.chunk_of(interval.end);
        for j in first_chunk..=last_chunk {
            let chunk_window = self.layout.window(j);
            let window = chunk_window
                .intersect(&interval)
                .expect("chunk range overlaps the query interval");
            let mut state = ChunkState {
                chunk_start: chunk_window.start,
                loaded: BTreeMap::new(),
                seed_segs: BTreeMap::new(),
                pending: Vec::new(),
            };
            // FindCells: locate and load every current seed's cell.
            for &s in &seed_list {
                let cell = self.dir_lookup(j, ObjectId(s))?;
                self.load_cell(j, cell, &mut state, &is_seed, stats)?;
                state.pending.push(s);
            }
            // Sweep the (clipped) window.
            let threshold = self.params.threshold;
            let mut hash = SpatialHash::new(threshold.max(1e-3));
            let mut around: Vec<u32> = Vec::new();
            for t in window.ticks() {
                let idx = (t - state.chunk_start) as usize;
                // All seeds want their neighborhoods present at this tick.
                state.pending.clear();
                state.pending.extend(state.seed_segs.keys().copied());
                loop {
                    // Load the potential-seed cells N_i around pending seeds.
                    while let Some(s) = state.pending.pop() {
                        let p = state.seed_segs[&s][idx];
                        around.clear();
                        self.geometry.cells_around(p, threshold, &mut around);
                        for &cell in &around {
                            if !state.loaded.contains_key(&cell) {
                                self.load_cell(j, cell, &mut state, &is_seed, stats)?;
                            }
                        }
                    }
                    // Probe every non-seed sample against the seed hash.
                    hash.clear();
                    let mut seed_pts: Vec<Point> = Vec::with_capacity(state.seed_segs.len());
                    for (k, seg) in state.seed_segs.values().enumerate() {
                        hash.insert(k as u32, seg[idx]);
                        seed_pts.push(seg[idx]);
                    }
                    let mut newly: Vec<(u32, Vec<Point>)> = Vec::new();
                    for data in state.loaded.values() {
                        for (o, samples) in &data.objects {
                            if is_seed[o.index()] || newly.iter().any(|(n, _)| *n == o.0) {
                                continue;
                            }
                            let p = samples[idx];
                            let mut hit = false;
                            hash.for_neighbors(p, |si| {
                                if !hit && seed_pts[si as usize].within(&p, threshold) {
                                    hit = true;
                                }
                            });
                            stats.examined += 1;
                            if hit {
                                newly.push((o.0, samples.clone()));
                            }
                        }
                    }
                    if newly.is_empty() {
                        break;
                    }
                    for (o, seg) in newly {
                        is_seed[o as usize] = true;
                        seed_list.push(o);
                        if o == q.dest.0 {
                            return Ok(QueryOutcome::reachable_at(t));
                        }
                        state.seed_segs.insert(o, seg);
                        state.pending.push(o);
                    }
                    // Loop again: same-tick contact chains and the freshly
                    // loaded neighborhoods may seed more objects.
                }
            }
        }
        Ok(QueryOutcome::UNREACHABLE)
    }

    fn load_cell(
        &mut self,
        chunk: u32,
        cell: u32,
        state: &mut ChunkState,
        is_seed: &[bool],
        stats: &mut QueryStats,
    ) -> Result<(), IndexError> {
        if state.loaded.contains_key(&cell) {
            return Ok(());
        }
        let Some(ptr) = self.chunks[chunk as usize].cell_ptr(cell) else {
            // Empty cells are not stored; remember the miss so we do not
            // retry the lookup this chunk.
            state.loaded.insert(cell, CellData::default());
            return Ok(());
        };
        let data = self.read_cell(ptr)?;
        stats.visited += 1;
        // Seeds found in this cell contribute their chunk segments.
        for (o, samples) in &data.objects {
            if is_seed[o.index()] && !state.seed_segs.contains_key(&o.0) {
                state.seed_segs.insert(o.0, samples.clone());
            }
        }
        state.loaded.insert(cell, data);
        Ok(())
    }
}

impl ReachabilityIndex for ReachGrid {
    fn name(&self) -> &'static str {
        "ReachGrid"
    }

    fn evaluate(&mut self, query: &Query) -> Result<QueryResult, IndexError> {
        self.evaluate_query(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GridParams;
    use reach_contact::Oracle;
    use reach_core::Environment;
    use reach_traj::{Trajectory, TrajectoryStore};

    /// Three walkers on a line: o0 stays west, o1 walks from o0 to o2,
    /// o2 stays east. Contacts: o0-o1 early, o1-o2 late.
    fn relay_store() -> TrajectoryStore {
        let env = Environment::square(200.0);
        let mk = |id: u32, f: &dyn Fn(u32) -> f32| {
            Trajectory::new(
                ObjectId(id),
                0,
                (0..40).map(|t| Point::new(f(t), 0.0)).collect(),
            )
        };
        let trajs = vec![
            mk(0, &|_| 0.0),
            mk(1, &|t| t as f32 * 4.0), // 0 → 156
            mk(2, &|_| 150.0),
        ];
        TrajectoryStore::new(env, trajs).unwrap()
    }

    fn grid(store: &TrajectoryStore) -> ReachGrid {
        ReachGrid::build(
            store,
            GridParams {
                temporal: 10,
                cell_size: 30.0,
                threshold: 5.0,
                cache_pages: 32,
                page_size: 256,
            },
        )
        .unwrap()
    }

    fn q(s: u32, d: u32, a: Time, b: Time) -> Query {
        Query::new(ObjectId(s), ObjectId(d), TimeInterval::new(a, b))
    }

    #[test]
    fn relay_chain_is_found() {
        let store = relay_store();
        let mut g = grid(&store);
        let oracle = Oracle::build(&store, 5.0);
        // o0 → o2 requires the full relay through o1.
        let full = g.evaluate_query(&q(0, 2, 0, 39)).unwrap();
        assert_eq!(full.outcome, oracle.evaluate(&q(0, 2, 0, 39)));
        assert!(full.reachable());
        // Cutting the interval before o1 meets o2 breaks the chain.
        let cut = g.evaluate_query(&q(0, 2, 0, 20)).unwrap();
        assert_eq!(cut.outcome, oracle.evaluate(&q(0, 2, 0, 20)));
        assert!(!cut.reachable());
    }

    #[test]
    fn direction_matters() {
        let store = relay_store();
        let mut g = grid(&store);
        let oracle = Oracle::build(&store, 5.0);
        // o2 → o0 needs the reverse chronology (o2 meets o1 *after* o1 left
        // o0), so it must be unreachable.
        let r = g.evaluate_query(&q(2, 0, 0, 39)).unwrap();
        assert_eq!(r.outcome, oracle.evaluate(&q(2, 0, 0, 39)));
        assert!(!r.reachable());
    }

    #[test]
    fn self_query_costs_nothing() {
        let store = relay_store();
        let mut g = grid(&store);
        let r = g.evaluate_query(&q(1, 1, 5, 10)).unwrap();
        assert!(r.reachable());
        assert_eq!(r.stats.random_ios + r.stats.seq_ios, 0);
    }

    #[test]
    fn early_termination_reads_less() {
        let store = relay_store();
        let mut g = grid(&store);
        // o0 → o1 succeeds in the first chunk; the same query over the whole
        // horizon must not read more pages than the unreachable o0 → o2 cut.
        let quick = g.evaluate_query(&q(0, 1, 0, 39)).unwrap();
        let slow = g.evaluate_query(&q(0, 2, 0, 20)).unwrap();
        assert!(quick.reachable());
        assert!(
            quick.stats.normalized_io() <= slow.stats.normalized_io(),
            "early termination should not cost more IO"
        );
    }

    #[test]
    fn unknown_object_and_bad_interval_error() {
        let store = relay_store();
        let mut g = grid(&store);
        assert!(matches!(
            g.evaluate_query(&q(9, 0, 0, 5)),
            Err(IndexError::UnknownObject(_))
        ));
        assert!(matches!(
            g.evaluate_query(&q(0, 1, 100, 120)),
            Err(IndexError::IntervalOutOfRange { .. })
        ));
    }

    #[test]
    fn interval_end_clipped_to_horizon() {
        let store = relay_store();
        let mut g = grid(&store);
        let r = g.evaluate_query(&q(0, 2, 0, 10_000)).unwrap();
        assert!(r.reachable());
    }

    #[test]
    fn trait_dispatch_works() {
        let store = relay_store();
        let mut g = grid(&store);
        let idx: &mut dyn ReachabilityIndex = &mut g;
        assert_eq!(idx.name(), "ReachGrid");
        assert!(idx.evaluate(&q(0, 1, 0, 39)).unwrap().reachable());
    }
}
