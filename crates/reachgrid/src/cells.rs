//! Grid-cell records: the on-disk unit of ReachGrid.
//!
//! A cell record holds, for every object whose chunk segment touches the
//! cell, the object's *full* segment for that temporal partition. Storing the
//! whole segment (rather than only the in-cell samples) keeps each seed's
//! position known for every tick of the chunk once a single cell containing
//! it has been read — the property Algorithm 1's incremental sweep relies on.

use reach_core::{Coord, IndexError, ObjectId, Point, Time};
use reach_storage::{ByteReader, ByteWriter};

/// Decoded contents of one grid cell for one temporal partition.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CellData {
    /// `(object, samples)` pairs, ascending by object id; `samples[k]` is
    /// the position at tick `window.start + k` of the chunk.
    pub objects: Vec<(ObjectId, Vec<Point>)>,
}

impl CellData {
    /// Serializes the cell into a record payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(8 + self.objects.len() * 64);
        w.put_u32(self.objects.len() as u32);
        for (o, samples) in &self.objects {
            w.put_u32(o.0);
            w.put_u32(samples.len() as u32);
            for p in samples {
                w.put_f32(p.x);
                w.put_f32(p.y);
            }
        }
        w.into_bytes()
    }

    /// Decodes a record payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, IndexError> {
        let mut r = ByteReader::new(bytes);
        let n = r.get_u32()? as usize;
        let mut objects = Vec::with_capacity(n);
        for _ in 0..n {
            let o = ObjectId(r.get_u32()?);
            let k = r.get_u32()? as usize;
            let mut samples = Vec::with_capacity(k);
            for _ in 0..k {
                let x = r.get_f32()?;
                let y = r.get_f32()?;
                samples.push(Point::new(x, y));
            }
            objects.push((o, samples));
        }
        Ok(Self { objects })
    }
}

/// Maps positions to spatial-grid cell coordinates.
#[derive(Clone, Copy, Debug)]
pub struct GridGeometry {
    /// Cell side in metres.
    pub cell_size: Coord,
    /// Grid columns.
    pub cols: u32,
    /// Grid rows.
    pub rows: u32,
}

impl GridGeometry {
    /// Builds the geometry for an environment of `width × height` metres.
    pub fn new(width: Coord, height: Coord, cell_size: Coord) -> Self {
        assert!(cell_size > 0.0);
        let cols = (width / cell_size).ceil().max(1.0) as u32;
        let rows = (height / cell_size).ceil().max(1.0) as u32;
        Self {
            cell_size,
            cols,
            rows,
        }
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> u32 {
        self.cols * self.rows
    }

    /// Cell id containing `p` (positions outside the environment are
    /// clamped to the border cells).
    #[inline]
    pub fn cell_of(&self, p: Point) -> u32 {
        let cx = ((p.x / self.cell_size).floor() as i64).clamp(0, i64::from(self.cols) - 1) as u32;
        let cy = ((p.y / self.cell_size).floor() as i64).clamp(0, i64::from(self.rows) - 1) as u32;
        cy * self.cols + cx
    }

    /// All cell ids intersecting the axis-aligned square of half-width
    /// `margin` around `p` — the cells a `d_T`-inflated seed position can
    /// touch (the potential-seed cells `N_i` of §4.2).
    pub fn cells_around(&self, p: Point, margin: Coord, out: &mut Vec<u32>) {
        let lo_x =
            (((p.x - margin) / self.cell_size).floor() as i64).clamp(0, i64::from(self.cols) - 1);
        let hi_x =
            (((p.x + margin) / self.cell_size).floor() as i64).clamp(0, i64::from(self.cols) - 1);
        let lo_y =
            (((p.y - margin) / self.cell_size).floor() as i64).clamp(0, i64::from(self.rows) - 1);
        let hi_y =
            (((p.y + margin) / self.cell_size).floor() as i64).clamp(0, i64::from(self.rows) - 1);
        for cy in lo_y..=hi_y {
            for cx in lo_x..=hi_x {
                out.push(cy as u32 * self.cols + cx as u32);
            }
        }
    }
}

/// A chunk (temporal partition) boundary helper: chunk `j` covers ticks
/// `[j·R_T, min((j+1)·R_T, horizon) - 1]`.
#[derive(Clone, Copy, Debug)]
pub struct ChunkLayout {
    /// Ticks per chunk (`R_T`).
    pub temporal: Time,
    /// Dataset horizon.
    pub horizon: Time,
}

impl ChunkLayout {
    /// Number of chunks.
    pub fn num_chunks(&self) -> u32 {
        if self.horizon == 0 {
            0
        } else {
            self.horizon.div_ceil(self.temporal)
        }
    }

    /// Chunk index containing tick `t`.
    #[inline]
    pub fn chunk_of(&self, t: Time) -> u32 {
        t / self.temporal
    }

    /// Tick window of chunk `j`.
    pub fn window(&self, j: u32) -> reach_core::TimeInterval {
        let start = j * self.temporal;
        let end = ((j + 1) * self.temporal - 1).min(self.horizon - 1);
        reach_core::TimeInterval::new(start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_record_roundtrip() {
        let cell = CellData {
            objects: vec![
                (
                    ObjectId(3),
                    vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)],
                ),
                (ObjectId(9), vec![Point::new(-1.5, 0.25)]),
            ],
        };
        let bytes = cell.encode();
        assert_eq!(CellData::decode(&bytes).unwrap(), cell);
    }

    #[test]
    fn empty_cell_roundtrip() {
        let cell = CellData::default();
        assert_eq!(CellData::decode(&cell.encode()).unwrap(), cell);
    }

    #[test]
    fn truncated_cell_is_corrupt() {
        let cell = CellData {
            objects: vec![(ObjectId(1), vec![Point::new(0.0, 0.0)])],
        };
        let bytes = cell.encode();
        assert!(CellData::decode(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn geometry_cell_mapping() {
        let g = GridGeometry::new(100.0, 50.0, 10.0);
        assert_eq!(g.cols, 10);
        assert_eq!(g.rows, 5);
        assert_eq!(g.num_cells(), 50);
        assert_eq!(g.cell_of(Point::new(0.0, 0.0)), 0);
        assert_eq!(g.cell_of(Point::new(95.0, 45.0)), 49);
        assert_eq!(g.cell_of(Point::new(15.0, 25.0)), 2 * 10 + 1);
        // Out-of-range positions clamp to border cells.
        assert_eq!(g.cell_of(Point::new(-5.0, -5.0)), 0);
        assert_eq!(g.cell_of(Point::new(1000.0, 1000.0)), 49);
    }

    #[test]
    fn cells_around_covers_neighborhood() {
        let g = GridGeometry::new(100.0, 100.0, 10.0);
        let mut out = Vec::new();
        // Point in the middle of cell (5,5); margin under a cell: only the
        // home cell unless the margin crosses a boundary.
        g.cells_around(Point::new(55.0, 55.0), 4.0, &mut out);
        assert_eq!(out, vec![5 * 10 + 5]);
        out.clear();
        // Margin crossing into all 8 neighbors.
        g.cells_around(Point::new(55.0, 55.0), 6.0, &mut out);
        assert_eq!(out.len(), 9);
        out.clear();
        // Corner point: clamped to the grid.
        g.cells_around(Point::new(0.0, 0.0), 15.0, &mut out);
        assert_eq!(out.len(), 4); // cells (0,0),(1,0),(0,1),(1,1)
    }

    #[test]
    fn chunk_layout_windows() {
        let l = ChunkLayout {
            temporal: 20,
            horizon: 45,
        };
        assert_eq!(l.num_chunks(), 3);
        assert_eq!(l.window(0), reach_core::TimeInterval::new(0, 19));
        assert_eq!(l.window(1), reach_core::TimeInterval::new(20, 39));
        assert_eq!(l.window(2), reach_core::TimeInterval::new(40, 44));
        assert_eq!(l.chunk_of(0), 0);
        assert_eq!(l.chunk_of(19), 0);
        assert_eq!(l.chunk_of(20), 1);
        assert_eq!(l.chunk_of(44), 2);
    }

    #[test]
    fn chunk_layout_exact_multiple() {
        let l = ChunkLayout {
            temporal: 10,
            horizon: 30,
        };
        assert_eq!(l.num_chunks(), 3);
        assert_eq!(l.window(2), reach_core::TimeInterval::new(20, 29));
    }
}
