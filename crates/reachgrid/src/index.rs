//! ReachGrid index construction and disk placement (paper §4.1).
//!
//! Layout on the block device (simulated or real, see
//! [`reach_storage::BlockDevice`]), in page order:
//!
//! 1. the object→cell *directory*: for every chunk, a fixed-width array of
//!    `u32` cell ids giving each object's cell at the chunk's first tick
//!    (the paper's external hash table mapping objects to trajectories);
//! 2. the cell records of chunk 0, page-aligned, ascending cell id;
//! 3. the cell records of chunk 1; … and so on.
//!
//! Cells of earlier chunks strictly precede later chunks (the paper's
//! placement rule for early termination) and the trajectories inside a cell
//! sit on consecutive pages.

use crate::cells::{CellData, ChunkLayout, GridGeometry};
use crate::params::GridParams;
use reach_core::{Environment, IndexError, ObjectId, Time, TimeInterval};
use reach_storage::{BlockDevice, IoStats, Pager, RecordPtr, RecordWriter, SimDevice};
use reach_traj::TrajectoryStore;

/// Per-chunk metadata kept in memory (the grid directory itself is tiny
/// compared to the data; the object→cell directory is on disk).
#[derive(Clone, Debug)]
pub struct ChunkMeta {
    /// Tick window of the chunk.
    pub window: TimeInterval,
    /// `(cell id, record address)` of every non-empty cell, ascending id.
    pub cells: Vec<(u32, RecordPtr)>,
}

impl ChunkMeta {
    /// Record pointer of a cell, if the cell is non-empty.
    pub fn cell_ptr(&self, cell: u32) -> Option<RecordPtr> {
        self.cells
            .binary_search_by_key(&cell, |&(c, _)| c)
            .ok()
            .map(|i| self.cells[i].1)
    }
}

/// A fully constructed, disk-resident ReachGrid index.
#[derive(Debug)]
pub struct ReachGrid {
    pub(crate) params: GridParams,
    pub(crate) geometry: GridGeometry,
    pub(crate) layout: ChunkLayout,
    pub(crate) chunks: Vec<ChunkMeta>,
    pub(crate) dir_first_page: u64,
    pub(crate) dir_pages_per_chunk: u64,
    pub(crate) num_objects: usize,
    pub(crate) pager: Pager,
}

impl ReachGrid {
    /// Builds the index for `store` on the paper's memory-backed simulator.
    pub fn build(store: &TrajectoryStore, params: GridParams) -> Result<Self, IndexError> {
        let device = SimDevice::new(params.page_size);
        Self::build_on(Box::new(device), store, params)
    }

    /// Builds the index for `store` onto any block device. The device's page
    /// size must match `params.page_size`.
    pub fn build_on(
        mut device: Box<dyn BlockDevice>,
        store: &TrajectoryStore,
        params: GridParams,
    ) -> Result<Self, IndexError> {
        params.validate();
        assert_eq!(
            device.page_size(),
            params.page_size,
            "device page size must match GridParams page size"
        );
        let env: Environment = store.environment();
        let geometry = GridGeometry::new(env.width, env.height, params.cell_size);
        let layout = ChunkLayout {
            temporal: params.temporal,
            horizon: store.horizon(),
        };
        let num_objects = store.num_objects();
        let disk = device.as_mut();

        // --- Directory region -------------------------------------------
        let entries_per_page = params.page_size / 4;
        let dir_pages_per_chunk = (num_objects as u64)
            .div_ceil(entries_per_page as u64)
            .max(1);
        let num_chunks = layout.num_chunks() as u64;
        let dir_first_page = disk.allocate((dir_pages_per_chunk * num_chunks) as usize)?;

        // --- Cell region --------------------------------------------------
        let mut writer = RecordWriter::new(disk)?;
        let mut chunks = Vec::with_capacity(num_chunks as usize);
        let mut dir_page_buf = vec![0u8; params.page_size];
        for j in 0..layout.num_chunks() {
            let window = layout.window(j);
            // Assign each object's chunk segment to every cell one of its
            // samples falls in.
            let mut staging: std::collections::BTreeMap<u32, CellData> =
                std::collections::BTreeMap::new();
            let mut dir_entries: Vec<u32> = Vec::with_capacity(num_objects);
            let mut touched: Vec<u32> = Vec::new();
            for traj in store.iter() {
                let seg = traj
                    .segment(window)
                    .expect("chunk windows lie inside the horizon");
                touched.clear();
                for (_, p) in seg.samples() {
                    touched.push(self_cell(&geometry, p));
                }
                touched.sort_unstable();
                touched.dedup();
                dir_entries.push(self_cell(&geometry, seg.positions[0]));
                for &cell in &touched {
                    staging
                        .entry(cell)
                        .or_default()
                        .objects
                        .push((traj.object, seg.positions.to_vec()));
                }
            }
            // Write this chunk's directory pages.
            for (page_idx, chunk_entries) in dir_entries.chunks(entries_per_page).enumerate() {
                dir_page_buf.fill(0);
                for (k, &cell) in chunk_entries.iter().enumerate() {
                    dir_page_buf[k * 4..k * 4 + 4].copy_from_slice(&cell.to_le_bytes());
                }
                disk.write_page(
                    dir_first_page + u64::from(j) * dir_pages_per_chunk + page_idx as u64,
                    &dir_page_buf,
                )?;
            }
            // Write the chunk's cells in ascending cell-id order, each
            // page-aligned so its first access is one seek.
            let mut cells = Vec::with_capacity(staging.len());
            for (cell_id, data) in staging {
                writer.align_to_page(disk)?;
                let ptr = writer.append(disk, &data.encode())?;
                cells.push((cell_id, ptr));
            }
            chunks.push(ChunkMeta { window, cells });
        }
        writer.finish(disk)?;
        disk.reset_stats();
        Ok(Self {
            params,
            geometry,
            layout,
            chunks,
            dir_first_page,
            dir_pages_per_chunk,
            num_objects,
            pager: Pager::new(device, params.cache_pages),
        })
    }

    /// Index parameters.
    pub fn params(&self) -> &GridParams {
        &self.params
    }

    /// Grid geometry (spatial partitioning).
    pub fn geometry(&self) -> &GridGeometry {
        &self.geometry
    }

    /// Temporal chunk layout.
    pub fn layout(&self) -> &ChunkLayout {
        &self.layout
    }

    /// Number of indexed objects.
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// Indexed horizon.
    pub fn horizon(&self) -> Time {
        self.layout.horizon
    }

    /// Per-chunk metadata.
    pub fn chunk(&self, j: u32) -> &ChunkMeta {
        &self.chunks[j as usize]
    }

    /// Total index size on the device, in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.pager.device().size_bytes()
    }

    /// The underlying block device (diagnostics and equivalence testing).
    pub fn device_mut(&mut self) -> &mut dyn reach_storage::BlockDevice {
        self.pager.device_mut()
    }

    /// Cumulative device IO counters (construction writes + query reads).
    pub fn io_stats(&self) -> IoStats {
        self.pager.stats()
    }

    /// Clears IO counters and the buffer pool (cold-cache measurement
    /// boundary).
    pub fn reset_io(&mut self) {
        self.pager.reset_stats();
        self.pager.clear_cache();
    }

    /// Sets the readahead window (pages) for chunk walks and timeline
    /// scans; 0 (the default) disables prefetch and keeps the paper's
    /// cold-cache counters exact.
    pub fn set_readahead(&mut self, window: usize) {
        self.pager.set_readahead(window);
    }

    /// Test-only public wrapper over the directory lookup.
    #[doc(hidden)]
    pub fn dir_lookup_for_tests(&mut self, chunk: u32, o: ObjectId) -> Result<u32, IndexError> {
        self.dir_lookup(chunk, o)
    }

    /// Test-only public wrapper over the cell reader.
    #[doc(hidden)]
    pub fn read_cell_for_tests(
        &mut self,
        ptr: reach_storage::RecordPtr,
    ) -> Result<CellData, IndexError> {
        self.read_cell(ptr)
    }

    /// Reads one object→cell directory entry through the pager. A directory
    /// probe touches exactly one page, so it borrows the cached buffer via
    /// the zero-copy `with_page` path.
    pub(crate) fn dir_lookup(&mut self, chunk: u32, o: ObjectId) -> Result<u32, IndexError> {
        let entries_per_page = self.params.page_size / 4;
        let page = self.dir_first_page
            + u64::from(chunk) * self.dir_pages_per_chunk
            + (o.index() / entries_per_page) as u64;
        let off = (o.index() % entries_per_page) * 4;
        self.pager.with_page(page, |bytes| {
            u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
        })
    }

    /// Reads and decodes one cell record through the pager.
    pub(crate) fn read_cell(&mut self, ptr: RecordPtr) -> Result<CellData, IndexError> {
        let bytes = reach_storage::read_record(&mut self.pager, ptr)?;
        CellData::decode(&bytes)
    }
}

#[inline]
fn self_cell(geometry: &GridGeometry, p: reach_core::Point) -> u32 {
    geometry.cell_of(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_core::Point;
    use reach_traj::Trajectory;

    fn store() -> TrajectoryStore {
        // 3 objects, 25 ticks, 100×100 env: o0 in the west, o1 in the east,
        // o2 wandering across.
        let env = Environment::square(100.0);
        let mk = |id: u32, f: &dyn Fn(u32) -> (f32, f32)| {
            Trajectory::new(
                ObjectId(id),
                0,
                (0..25)
                    .map(|t| {
                        let (x, y) = f(t);
                        Point::new(x, y)
                    })
                    .collect(),
            )
        };
        let trajs = vec![
            mk(0, &|_| (10.0, 10.0)),
            mk(1, &|_| (90.0, 90.0)),
            mk(2, &|t| (4.0 * t as f32, 50.0)),
        ];
        TrajectoryStore::new(env, trajs).unwrap()
    }

    fn params() -> GridParams {
        GridParams {
            temporal: 10,
            cell_size: 25.0,
            threshold: 5.0,
            cache_pages: 16,
            page_size: 256,
        }
    }

    #[test]
    fn build_creates_expected_chunks() {
        let g = ReachGrid::build(&store(), params()).unwrap();
        assert_eq!(g.layout().num_chunks(), 3);
        assert_eq!(g.chunk(0).window, TimeInterval::new(0, 9));
        assert_eq!(g.chunk(2).window, TimeInterval::new(20, 24));
        assert_eq!(g.num_objects(), 3);
        assert!(g.size_bytes() > 0);
    }

    #[test]
    fn directory_points_to_start_cell() {
        let mut g = ReachGrid::build(&store(), params()).unwrap();
        // o0 at (10,10) → cell (0,0) = 0 in a 4×4 grid of 25m cells.
        assert_eq!(g.dir_lookup(0, ObjectId(0)).unwrap(), 0);
        // o1 at (90,90) → cell (3,3) = 15.
        assert_eq!(g.dir_lookup(0, ObjectId(1)).unwrap(), 15);
        // o2 starts chunk 1 at x=40 → col 1, row 2 → 9.
        assert_eq!(g.dir_lookup(1, ObjectId(2)).unwrap(), 2 * 4 + 1);
    }

    #[test]
    fn cells_contain_full_segments() {
        let mut g = ReachGrid::build(&store(), params()).unwrap();
        let ptr = g.chunk(0).cell_ptr(0).expect("o0's home cell is non-empty");
        let cell = g.read_cell(ptr).unwrap();
        let (o, samples) = &cell.objects[0];
        assert_eq!(*o, ObjectId(0));
        assert_eq!(samples.len(), 10, "full chunk segment stored");
    }

    #[test]
    fn moving_object_lands_in_multiple_cells() {
        let mut g = ReachGrid::build(&store(), params()).unwrap();
        // o2 crosses x=0..36 in chunk 0 → cells (0,2) and (1,2).
        let c_a = g.chunk(0).cell_ptr(2 * 4).expect("cell (0,2)");
        let c_b = g.chunk(0).cell_ptr(2 * 4 + 1).expect("cell (1,2)");
        let in_a = g.read_cell(c_a).unwrap();
        let in_b = g.read_cell(c_b).unwrap();
        assert!(in_a.objects.iter().any(|(o, _)| *o == ObjectId(2)));
        assert!(in_b.objects.iter().any(|(o, _)| *o == ObjectId(2)));
    }

    #[test]
    fn empty_cells_not_stored() {
        let g = ReachGrid::build(&store(), params()).unwrap();
        // 4×4 grid, but only a handful of cells are populated per chunk.
        assert!(g.chunk(0).cells.len() <= 6);
        assert!(g.chunk(0).cell_ptr(5).is_none(), "cell (1,1) is empty");
    }

    #[test]
    fn chunks_placed_in_order_on_disk() {
        let g = ReachGrid::build(&store(), params()).unwrap();
        let mut last = 0u64;
        for j in 0..g.layout().num_chunks() {
            for &(_, ptr) in &g.chunk(j).cells {
                assert!(
                    ptr.page >= last,
                    "cell pages must be non-decreasing across chunks"
                );
                last = ptr.page;
            }
        }
    }

    #[test]
    fn construction_io_is_reset() {
        let g = ReachGrid::build(&store(), params()).unwrap();
        assert_eq!(g.io_stats(), IoStats::default());
    }
}
