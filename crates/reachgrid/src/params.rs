//! ReachGrid tuning parameters.

use reach_core::{Coord, Time};
use reach_storage::DEFAULT_PAGE_SIZE;

/// Construction and runtime parameters of a ReachGrid index (paper §4.1).
#[derive(Clone, Copy, Debug)]
pub struct GridParams {
    /// Temporal resolution `R_T`: ticks per temporal partition (the paper's
    /// empirically optimal value is 20 for both dataset families, §6.1.1).
    pub temporal: Time,
    /// Spatial resolution `R_S`: grid cell side in metres (paper optimum:
    /// 1 024 m for RWP, 17 km for VN).
    pub cell_size: Coord,
    /// Contact threshold `d_T` in metres.
    pub threshold: Coord,
    /// Buffer-pool capacity in pages used at query time.
    pub cache_pages: usize,
    /// Device page size in bytes (paper: 4 KB).
    pub page_size: usize,
}

impl Default for GridParams {
    fn default() -> Self {
        Self {
            temporal: 20,
            cell_size: 1024.0,
            threshold: 25.0,
            cache_pages: 256,
            page_size: DEFAULT_PAGE_SIZE,
        }
    }
}

impl GridParams {
    /// Validates parameter sanity; called by the builder.
    pub fn validate(&self) {
        assert!(self.temporal >= 1, "temporal resolution must be ≥ 1 tick");
        assert!(self.cell_size > 0.0, "cell size must be positive");
        assert!(self.threshold > 0.0, "contact threshold must be positive");
        assert!(self.page_size >= 64, "page size unreasonably small");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_optima() {
        let p = GridParams::default();
        assert_eq!(p.temporal, 20);
        assert_eq!(p.cell_size, 1024.0);
        assert_eq!(p.page_size, 4096);
        p.validate();
    }

    #[test]
    #[should_panic(expected = "temporal resolution")]
    fn zero_temporal_rejected() {
        GridParams {
            temporal: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn zero_cell_rejected() {
        GridParams {
            cell_size: 0.0,
            ..Default::default()
        }
        .validate();
    }
}
