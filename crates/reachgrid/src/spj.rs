//! SPJ — the paper's naïve baseline (§6.1.2).
//!
//! SPJ materializes the query-relevant contact network `C'` by *retrieving
//! every trajectory segment overlapping the query interval* (a full scan of
//! the window's chunks) and only then traverses it. It shares ReachGrid's
//! on-disk layout, so the comparison isolates the value of guided expansion:
//! the paper reports ReachGrid beating SPJ by ≥ 96 %.

use crate::cells::CellData;
use crate::index::ReachGrid;
use reach_core::{
    IndexError, Point, Query, QueryOutcome, QueryResult, QueryStats, ReachabilityIndex,
    TimeInterval, UnionFind,
};
use reach_traj::{proximity_pairs, SpatialHash};
use std::time::Instant;

/// SPJ evaluator borrowing a built ReachGrid layout.
pub struct Spj<'a> {
    grid: &'a mut ReachGrid,
}

impl<'a> Spj<'a> {
    /// Wraps a grid index for full-scan evaluation.
    pub fn new(grid: &'a mut ReachGrid) -> Self {
        Self { grid }
    }

    /// Evaluates by full materialization of `C'` followed by propagation.
    pub fn evaluate_query(&mut self, q: &Query) -> Result<QueryResult, IndexError> {
        let started = Instant::now();
        let grid = &mut *self.grid;
        grid.pager.clear_cache();
        grid.pager.break_sequence();
        let before = grid.pager.stats();
        let mut stats = QueryStats::default();

        let horizon = grid.horizon();
        if q.source.index() >= grid.num_objects() {
            return Err(IndexError::UnknownObject(q.source));
        }
        if q.dest.index() >= grid.num_objects() {
            return Err(IndexError::UnknownObject(q.dest));
        }
        if q.interval.start >= horizon {
            return Err(IndexError::IntervalOutOfRange {
                requested: q.interval,
                horizon,
            });
        }
        let interval = TimeInterval::new(q.interval.start, q.interval.end.min(horizon - 1));

        let n = grid.num_objects();
        let mut infected = vec![false; n];
        infected[q.source.index()] = true;
        let mut earliest = if q.source == q.dest {
            Some(interval.start)
        } else {
            None
        };

        let first_chunk = grid.layout.chunk_of(interval.start);
        let last_chunk = grid.layout.chunk_of(interval.end);
        let threshold = grid.params.threshold;
        let mut hash = SpatialHash::new(threshold.max(1e-3));
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut uf = UnionFind::new(n);
        for j in first_chunk..=last_chunk {
            let chunk_window = grid.layout.window(j);
            let window = chunk_window
                .intersect(&interval)
                .expect("chunk overlaps interval");
            // Full scan: every cell of the chunk, in disk order. This is the
            // entire IO bill of SPJ — no pruning, no early termination.
            let mut segs: Vec<Option<Vec<Point>>> = vec![None; n];
            let ptrs: Vec<_> = grid.chunks[j as usize]
                .cells
                .iter()
                .map(|&(_, p)| p)
                .collect();
            for ptr in ptrs {
                let data: CellData = grid.read_cell(ptr)?;
                stats.visited += 1;
                for (o, samples) in data.objects {
                    segs[o.index()].get_or_insert(samples);
                }
            }
            // Traverse the materialized sub-network tick by tick.
            let mut points: Vec<Point> = vec![Point::default(); n];
            for t in window.ticks() {
                let idx = (t - chunk_window.start) as usize;
                for (o, seg) in segs.iter().enumerate() {
                    points[o] = seg
                        .as_ref()
                        .map(|s| s[idx])
                        .expect("every object appears in some cell per chunk");
                }
                proximity_pairs(&points, threshold, &mut hash, &mut pairs);
                stats.examined += pairs.len() as u64;
                if pairs.is_empty() {
                    continue;
                }
                uf.reset();
                for &(a, b) in &pairs {
                    uf.union(a, b);
                }
                // Component closure: infect whole components that contain an
                // infected member.
                let mut roots: Vec<(u32, u32)> = Vec::with_capacity(pairs.len() * 2);
                for &(a, b) in &pairs {
                    roots.push((uf.find(a), a));
                    roots.push((uf.find(b), b));
                }
                roots.sort_unstable();
                roots.dedup();
                let mut i = 0;
                while i < roots.len() {
                    let root = roots[i].0;
                    let mut k = i;
                    let mut any = false;
                    while k < roots.len() && roots[k].0 == root {
                        any |= infected[roots[k].1 as usize];
                        k += 1;
                    }
                    if any {
                        for r in &roots[i..k] {
                            if !infected[r.1 as usize] {
                                infected[r.1 as usize] = true;
                                if r.1 == q.dest.0 && earliest.is_none() {
                                    earliest = Some(t);
                                }
                            }
                        }
                    }
                    i = k;
                }
            }
        }

        let io = grid.pager.stats().since(&before);
        stats.random_ios = io.random_reads;
        stats.seq_ios = io.seq_reads;
        stats.cpu = started.elapsed();
        let outcome = match earliest {
            Some(t) => QueryOutcome::reachable_at(t),
            None => QueryOutcome::UNREACHABLE,
        };
        Ok(QueryResult { outcome, stats })
    }
}

impl ReachabilityIndex for Spj<'_> {
    fn name(&self) -> &'static str {
        "SPJ"
    }

    fn evaluate(&mut self, query: &Query) -> Result<QueryResult, IndexError> {
        self.evaluate_query(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GridParams;
    use reach_contact::Oracle;
    use reach_core::{Environment, ObjectId, Time};
    use reach_traj::{Trajectory, TrajectoryStore};

    fn store() -> TrajectoryStore {
        let env = Environment::square(200.0);
        let mk = |id: u32, f: &dyn Fn(u32) -> f32| {
            Trajectory::new(
                ObjectId(id),
                0,
                (0..40).map(|t| Point::new(f(t), 0.0)).collect(),
            )
        };
        let trajs = vec![
            mk(0, &|_| 0.0),
            mk(1, &|t| t as f32 * 4.0),
            mk(2, &|_| 150.0),
        ];
        TrajectoryStore::new(env, trajs).unwrap()
    }

    fn grid(store: &TrajectoryStore) -> ReachGrid {
        ReachGrid::build(
            store,
            GridParams {
                temporal: 10,
                cell_size: 30.0,
                threshold: 5.0,
                cache_pages: 32,
                page_size: 256,
            },
        )
        .unwrap()
    }

    fn q(s: u32, d: u32, a: Time, b: Time) -> Query {
        Query::new(ObjectId(s), ObjectId(d), TimeInterval::new(a, b))
    }

    #[test]
    fn spj_matches_oracle() {
        let store = store();
        let oracle = Oracle::build(&store, 5.0);
        let mut g = grid(&store);
        for (s, d, a, b) in [
            (0, 2, 0, 39),
            (0, 2, 0, 20),
            (2, 0, 0, 39),
            (0, 1, 0, 10),
            (1, 2, 20, 39),
        ] {
            let query = q(s, d, a, b);
            let got = Spj::new(&mut g).evaluate_query(&query).unwrap();
            assert_eq!(got.outcome, oracle.evaluate(&query), "query {query}");
        }
    }

    #[test]
    fn guided_expansion_prunes_remote_clusters() {
        // ReachGrid's advantage materializes when most of the window's data
        // is spatially irrelevant to the query: plant a busy far-away
        // cluster that SPJ must scan but guided expansion never touches.
        let env = Environment::square(2000.0);
        let mk = |id: u32, f: Box<dyn Fn(u32) -> (f32, f32)>| {
            Trajectory::new(
                ObjectId(id),
                0,
                (0..40)
                    .map(|t| {
                        let (x, y) = f(t);
                        Point::new(x, y)
                    })
                    .collect(),
            )
        };
        let mut trajs = vec![
            mk(0, Box::new(|_| (0.0, 0.0))),
            mk(1, Box::new(|t| (t as f32 * 4.0, 0.0))),
            mk(2, Box::new(|_| (150.0, 0.0))),
        ];
        // A dozen objects milling around a far corner.
        for i in 0..12u32 {
            trajs.push(mk(
                3 + i,
                Box::new(move |t| {
                    (
                        1800.0 + (i % 4) as f32 * 3.0 + (t as f32 * 0.1).sin(),
                        1800.0 + (i / 4) as f32 * 3.0,
                    )
                }),
            ));
        }
        let store = TrajectoryStore::new(env, trajs).unwrap();
        let mut g = ReachGrid::build(
            &store,
            GridParams {
                temporal: 10,
                cell_size: 100.0,
                threshold: 5.0,
                cache_pages: 64,
                page_size: 256,
            },
        )
        .unwrap();
        let query = q(0, 2, 0, 39);
        let spj = Spj::new(&mut g).evaluate_query(&query).unwrap().stats;
        let grid = g.evaluate_query(&query).unwrap().stats;
        assert!(
            spj.random_ios + spj.seq_ios > grid.random_ios + grid.seq_ios,
            "SPJ ({spj:?}) should read strictly more pages than guided expansion ({grid:?})"
        );
        // The grid evaluator must never touch the remote cluster's cells.
        assert!(grid.visited < spj.visited);
    }

    #[test]
    fn spj_io_is_interval_proportional_not_outcome_dependent() {
        let store = store();
        let mut g = grid(&store);
        // Same interval, different destinations: identical full-scan IO.
        let a = Spj::new(&mut g).evaluate_query(&q(0, 1, 0, 39)).unwrap();
        let b = Spj::new(&mut g).evaluate_query(&q(0, 2, 0, 39)).unwrap();
        assert_eq!(
            a.stats.random_ios + a.stats.seq_ios,
            b.stats.random_ios + b.stats.seq_ios
        );
    }
}
