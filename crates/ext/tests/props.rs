//! Property tests for the §7 extensions.

use proptest::prelude::*;
use reach_contact::Oracle;
use reach_core::{ObjectId, Query, TimeInterval};
use reach_ext::{NonImmediateIndex, UReachGraph, UncertainEvent, UncertainOracle};

fn uncertain_events(
    max_objects: usize,
    max_horizon: usize,
) -> impl Strategy<Value = (usize, u32, Vec<UncertainEvent>)> {
    (3..=max_objects, 4..=max_horizon).prop_flat_map(move |(n, h)| {
        let ev = (0..h as u32, 0..n as u32, 0..n as u32, 0.05f64..=1.0).prop_filter_map(
            "distinct pair",
            |(t, a, b, p)| {
                (a != b).then(|| UncertainEvent {
                    t,
                    a: ObjectId(a.min(b)),
                    b: ObjectId(a.max(b)),
                    p,
                })
            },
        );
        prop::collection::vec(ev, 0..30).prop_map(move |evs| (n, h as u32, evs))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// U-ReachGraph's max-probability search ≡ the fixpoint oracle on every
    /// pair, for the unbounded threshold (exact maxima).
    #[test]
    fn ureachgraph_matches_fixpoint_oracle((n, h, events) in uncertain_events(6, 24)) {
        let oracle = UncertainOracle::new(n, h, &events);
        let index = UReachGraph::build(n, h, &events);
        let iv = TimeInterval::new(0, h - 1);
        for s in 0..n as u32 {
            let best = oracle.best_probabilities(ObjectId(s), iv);
            for d in 0..n as u32 {
                if s == d {
                    continue;
                }
                let got = index.best_probability(ObjectId(s), ObjectId(d), iv, f64::INFINITY);
                prop_assert!(
                    (got - best[d as usize]).abs() < 1e-9,
                    "max path probability {}→{}: index {} vs oracle {}",
                    s, d, got, best[d as usize]
                );
            }
        }
    }

    /// Probabilistic reachability is monotone in the threshold, and a
    /// threshold of 0⁺ with all-certain contacts degenerates to plain
    /// reachability.
    #[test]
    fn threshold_monotone_and_certain_degenerates((n, h, mut events) in uncertain_events(6, 20)) {
        let iv = TimeInterval::new(0, h - 1);
        let index = UReachGraph::build(n, h, &events);
        for s in 0..n as u32 {
            for d in 0..n as u32 {
                if s == d { continue; }
                let hi = index.reachable(ObjectId(s), ObjectId(d), iv, 0.8);
                let lo = index.reachable(ObjectId(s), ObjectId(d), iv, 0.2);
                prop_assert!(!hi || lo, "reachable at 0.8 but not at 0.2 ({s}→{d})");
            }
        }
        // Force all probabilities to 1 and compare with the certain oracle.
        for e in &mut events {
            e.p = 1.0;
        }
        let certain = UReachGraph::build(n, h, &events);
        let script: Vec<Vec<(u32, u32)>> = {
            let mut per = vec![Vec::new(); h as usize];
            for e in &events {
                per[e.t as usize].push((e.a.0, e.b.0));
            }
            per
        };
        let oracle = Oracle::from_events(n, script);
        for s in 0..n as u32 {
            for d in 0..n as u32 {
                if s == d { continue; }
                let q = Query::new(ObjectId(s), ObjectId(d), iv);
                prop_assert_eq!(
                    certain.reachable(ObjectId(s), ObjectId(d), iv, 1.0),
                    oracle.evaluate(&q).reachable,
                    "certain U-ReachGraph must equal plain reachability on {}", q
                );
            }
        }
    }
}

fn event_script(
    max_objects: usize,
    max_horizon: usize,
) -> impl Strategy<Value = (usize, Vec<Vec<(u32, u32)>>)> {
    (3..=max_objects, 4..=max_horizon).prop_flat_map(move |(n, h)| {
        let pair = (0..n as u32, 0..n as u32)
            .prop_filter_map("distinct", |(a, b)| (a != b).then(|| (a.min(b), a.max(b))));
        let tick = prop::collection::vec(pair, 0..3);
        prop::collection::vec(tick, h).prop_map(move |script| (n, script))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Non-immediate contacts with zero lifetime over *symmetric* directed
    /// events ≡ the ordinary immediate-contact oracle.
    #[test]
    fn zero_lifetime_equals_immediate((n, script) in event_script(6, 20)) {
        let h = script.len() as u32;
        // Symmetric directed events with emit == receive.
        let events: Vec<reach_ext::DirectedEvent> = script
            .iter()
            .enumerate()
            .flat_map(|(t, pairs)| {
                pairs.iter().flat_map(move |&(a, b)| {
                    [
                        reach_ext::DirectedEvent {
                            receive: t as u32,
                            emit: t as u32,
                            from: ObjectId(a),
                            to: ObjectId(b),
                        },
                        reach_ext::DirectedEvent {
                            receive: t as u32,
                            emit: t as u32,
                            from: ObjectId(b),
                            to: ObjectId(a),
                        },
                    ]
                })
            })
            .collect();
        let ni = NonImmediateIndex::new(n, h, &events);
        let oracle = Oracle::from_events(n, script.clone());
        for s in 0..n as u32 {
            for d in 0..n as u32 {
                for (t1, t2) in [(0, h - 1), (h / 2, h - 1)] {
                    let iv = TimeInterval::new(t1, t2);
                    let q = Query::new(ObjectId(s), ObjectId(d), iv);
                    let (got, when) = ni.reachable(ObjectId(s), ObjectId(d), iv);
                    let expected = oracle.evaluate(&q);
                    prop_assert_eq!(got, expected.reachable, "verdict mismatch on {}", q);
                    if expected.reachable {
                        prop_assert_eq!(when, expected.earliest, "arrival mismatch on {}", q);
                    }
                }
            }
        }
    }
}
