//! # reach-ext
//!
//! The paper's §7 extensions, implemented in full:
//!
//! * [`uncertain`] — uncertain contact networks and **U-ReachGraph**:
//!   probabilistic contacts, max-probability (shortest-path style) query
//!   processing against a threshold `p_T`;
//! * [`nonimmediate`] — non-immediate contacts with item lifetime `T_t`,
//!   built on the replicated-trajectory join.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod nonimmediate;
pub mod uncertain;

pub use nonimmediate::{replicated_join, DirectedEvent, NonImmediateIndex};
pub use uncertain::{
    events_from_store, randomize_probabilities, UReachGraph, UncertainEvent, UncertainOracle,
};
