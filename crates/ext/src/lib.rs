//! # reach-ext
//!
//! The paper's §7 extensions plus the decay-weighted workloads from the
//! follow-up literature, one module per query family:
//!
//! | module | query kinds | engine | oracle |
//! |---|---|---|---|
//! | [`uncertain`] | `Uncertain` (probability ≥ `p_T`) | U-ReachGraph max-probability search | [`uncertain::UncertainOracle`] |
//! | [`nonimmediate`] | `NonImmediate` (item lifetime `T_t`) | replicated-trajectory join | exhaustive hold-set sweep |
//! | [`decay`] | `Decay` (weight ≥ θ), `TopK` | [`reach_graph::decay`] best-first expansion | [`decay::DecayOracle`] path enumeration |
//!
//! Each module pairs a production engine with a brute-force oracle so the
//! extension semantics are pinned down by executable specification, not
//! prose; the prose contract for every query kind lives in the
//! repository's `QUERIES.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod decay;
pub mod nonimmediate;
pub mod uncertain;

pub use decay::DecayOracle;
pub use nonimmediate::{replicated_join, DirectedEvent, NonImmediateIndex};
pub use uncertain::{
    events_from_store, randomize_probabilities, UReachGraph, UncertainEvent, UncertainOracle,
};
