//! Uncertain contact networks — U-ReachGraph (paper §7).
//!
//! Every contact transmits with a probability `p`; a contact path's
//! probability is the product of its contacts' probabilities, and `o_j` is
//! reachable from `o_i` during `Tp` iff a contact path of probability
//! ≥ `p_T` exists. As the paper prescribes, query processing switches from
//! BFS to *shortest-path style* search: a max-probability Dijkstra over the
//! time-respecting event structure. (Reduction step 1 is inapplicable under
//! uncertainty — members of one snapshot component are no longer
//! equivalently reachable — so the index is a per-object temporal adjacency
//! structure instead of a component DAG.)

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reach_core::{
    Answer, Coord, IndexError, ObjectId, Query, QueryKind, QueryOutcome, QueryResult, QueryStats,
    ReachRequest, Time, TimeInterval,
};
use reach_traj::TrajectoryStore;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One uncertain contact event: `a` and `b` can exchange an item at tick
/// `t` with probability `p`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UncertainEvent {
    /// Event tick.
    pub t: Time,
    /// Smaller object id.
    pub a: ObjectId,
    /// Larger object id.
    pub b: ObjectId,
    /// Transmission probability in `(0, 1]`.
    pub p: f64,
}

/// Derives uncertain events from a trajectory store: proximity events get a
/// distance-dependent transmission probability
/// `p = p_max · (1 - dist/d_T)^γ` — the paper's "p depends on various
/// factors such as the distance between the individuals".
pub fn events_from_store(
    store: &TrajectoryStore,
    threshold: Coord,
    p_max: f64,
    gamma: f64,
) -> Vec<UncertainEvent> {
    let window = store.horizon_interval();
    reach_contact::extract_events(store, window, threshold)
        .into_iter()
        .map(|ev| {
            let pa = store.position(ev.a, ev.t).expect("event positions exist");
            let pb = store.position(ev.b, ev.t).expect("event positions exist");
            let frac = (pa.distance(&pb) / f64::from(threshold)).min(1.0);
            UncertainEvent {
                t: ev.t,
                a: ev.a,
                b: ev.b,
                p: (p_max * (1.0 - frac).powf(gamma)).clamp(1e-6, 1.0),
            }
        })
        .collect()
}

/// Assigns i.i.d. random probabilities in `[lo, hi]` to certain events
/// (useful for controlled experiments).
pub fn randomize_probabilities(
    events: &[(Time, u32, u32)],
    lo: f64,
    hi: f64,
    seed: u64,
) -> Vec<UncertainEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    events
        .iter()
        .map(|&(t, a, b)| UncertainEvent {
            t,
            a: ObjectId(a.min(b)),
            b: ObjectId(a.max(b)),
            p: rng.gen_range(lo..=hi),
        })
        .collect()
}

/// Ground truth: tick-forward fixpoint sweep computing, per object, the
/// best (maximum) contact-path probability of holding the item.
pub struct UncertainOracle {
    per_tick: Vec<Vec<(u32, u32, f64)>>,
    num_objects: usize,
}

impl UncertainOracle {
    /// Groups events per tick.
    pub fn new(num_objects: usize, horizon: Time, events: &[UncertainEvent]) -> Self {
        let mut per_tick = vec![Vec::new(); horizon as usize];
        for ev in events {
            if ev.t < horizon {
                per_tick[ev.t as usize].push((ev.a.0, ev.b.0, ev.p));
            }
        }
        Self {
            per_tick,
            num_objects,
        }
    }

    /// Best path probability per object for an item initiated by `source`
    /// at `interval.start`.
    pub fn best_probabilities(&self, source: ObjectId, interval: TimeInterval) -> Vec<f64> {
        let mut best = vec![0.0f64; self.num_objects];
        if source.index() >= self.num_objects {
            return best;
        }
        best[source.index()] = 1.0;
        for t in interval.ticks() {
            let Some(events) = self.per_tick.get(t as usize) else {
                break;
            };
            // Same-tick chains multiply through: iterate to fixpoint.
            loop {
                let mut changed = false;
                for &(a, b, p) in events {
                    let via_a = best[a as usize] * p;
                    if via_a > best[b as usize] {
                        best[b as usize] = via_a;
                        changed = true;
                    }
                    let via_b = best[b as usize] * p;
                    if via_b > best[a as usize] {
                        best[a as usize] = via_b;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
        }
        best
    }

    /// Probabilistic reachability verdict (`best path probability ≥ p_T`).
    pub fn reachable(
        &self,
        source: ObjectId,
        dest: ObjectId,
        interval: TimeInterval,
        p_threshold: f64,
    ) -> bool {
        self.best_probabilities(source, interval)[dest.index()] >= p_threshold
    }
}

/// U-ReachGraph: per-object temporal event adjacency + max-probability
/// Dijkstra with Pareto pruning and threshold-based early termination.
pub struct UReachGraph {
    /// Per object: `(tick, peer, probability)` ascending by tick.
    adjacency: Vec<Vec<(Time, u32, f64)>>,
    horizon: Time,
}

#[derive(Debug)]
struct State {
    prob: f64,
    object: u32,
    time: Time,
}

impl PartialEq for State {
    fn eq(&self, other: &Self) -> bool {
        self.prob == other.prob && self.object == other.object && self.time == other.time
    }
}
impl Eq for State {}
impl PartialOrd for State {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for State {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by probability; ties broken by earlier time.
        self.prob
            .partial_cmp(&other.prob)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.time.cmp(&self.time))
            .then_with(|| self.object.cmp(&other.object))
    }
}

impl UReachGraph {
    /// Builds the per-object adjacency index.
    pub fn build(num_objects: usize, horizon: Time, events: &[UncertainEvent]) -> Self {
        let mut adjacency: Vec<Vec<(Time, u32, f64)>> = vec![Vec::new(); num_objects];
        for ev in events {
            if ev.t < horizon {
                adjacency[ev.a.index()].push((ev.t, ev.b.0, ev.p));
                adjacency[ev.b.index()].push((ev.t, ev.a.0, ev.p));
            }
        }
        for adj in &mut adjacency {
            adj.sort_by_key(|&(t, peer, _)| (t, peer));
        }
        Self { adjacency, horizon }
    }

    /// Number of objects indexed.
    pub fn num_objects(&self) -> usize {
        self.adjacency.len()
    }

    /// Best contact-path probability from `source` to `dest` within
    /// `interval`, terminating early once `p_threshold` is met (returns the
    /// first qualifying probability in that case).
    ///
    /// A state `(o, t, q)` means "`o` can hold the item from tick `t` with
    /// path probability `q`"; states dominated by an earlier-or-equal
    /// acquisition with at-least-equal probability are pruned (Pareto
    /// frontier per object).
    pub fn best_probability(
        &self,
        source: ObjectId,
        dest: ObjectId,
        interval: TimeInterval,
        p_threshold: f64,
    ) -> f64 {
        let n = self.num_objects();
        if source.index() >= n || dest.index() >= n || interval.start >= self.horizon {
            return 0.0;
        }
        let interval = TimeInterval::new(interval.start, interval.end.min(self.horizon - 1));
        if source == dest {
            return 1.0;
        }
        // Pareto frontier per object: (time, prob) pairs, time strictly
        // increasing ⇒ prob strictly increasing is NOT required; we keep
        // pairs where no other pair has time ≤ and prob ≥.
        let mut frontier: Vec<Vec<(Time, f64)>> = vec![Vec::new(); n];
        let mut best_dest = 0.0f64;
        let mut heap = BinaryHeap::new();
        frontier[source.index()].push((interval.start, 1.0));
        heap.push(State {
            prob: 1.0,
            object: source.0,
            time: interval.start,
        });
        while let Some(State { prob, object, time }) = heap.pop() {
            if prob < best_dest || prob < f64::MIN_POSITIVE {
                continue;
            }
            // Skip superseded states.
            if !frontier[object as usize]
                .iter()
                .any(|&(t, q)| t == time && q == prob)
            {
                continue;
            }
            let adj = &self.adjacency[object as usize];
            let from = adj.partition_point(|&(t, _, _)| t < time);
            for &(t, peer, p) in &adj[from..] {
                if t > interval.end {
                    break;
                }
                let q = prob * p;
                if q <= best_dest {
                    continue;
                }
                // Pareto check for (peer, t, q).
                let fr = &mut frontier[peer as usize];
                if fr.iter().any(|&(t0, q0)| t0 <= t && q0 >= q) {
                    continue;
                }
                fr.retain(|&(t0, q0)| !(t <= t0 && q >= q0));
                fr.push((t, q));
                if peer == dest.0 {
                    best_dest = best_dest.max(q);
                    if best_dest >= p_threshold {
                        return best_dest;
                    }
                }
                heap.push(State {
                    prob: q,
                    object: peer,
                    time: t,
                });
            }
        }
        best_dest
    }

    /// Probabilistic reachability verdict.
    pub fn reachable(
        &self,
        source: ObjectId,
        dest: ObjectId,
        interval: TimeInterval,
        p_threshold: f64,
    ) -> bool {
        self.best_probability(source, dest, interval, p_threshold) >= p_threshold
    }
}

impl reach_core::ReachabilityIndex for UReachGraph {
    fn name(&self) -> &'static str {
        "U-ReachGraph"
    }

    /// Plain reachability has no meaning over uncertain contacts (a zero
    /// threshold would make every connected pair "reachable"); queries must
    /// arrive as [`QueryKind::Uncertain`]
    /// requests through [`ReachabilityIndex::answer`](reach_core::ReachabilityIndex::answer).
    fn evaluate(&mut self, query: &Query) -> Result<QueryResult, IndexError> {
        Err(ReachRequest::from(*query)
            .unsupported("U-ReachGraph (plain reach; send QueryKind::Uncertain instead)"))
    }

    fn answer(&mut self, request: &ReachRequest) -> Result<Answer, IndexError> {
        let QueryKind::Uncertain { threshold } = request.kind else {
            return Err(request.unsupported(self.name()));
        };
        if !(0.0..=1.0).contains(&threshold) {
            return Err(IndexError::Unsupported(format!(
                "probability threshold {threshold} outside [0, 1]"
            )));
        }
        let started = std::time::Instant::now();
        let q = &request.query;
        let p = self.best_probability(q.source, q.dest, q.interval, threshold);
        Ok(Answer::from(QueryResult {
            outcome: if p >= threshold && p > 0.0 {
                QueryOutcome::reachable()
            } else {
                QueryOutcome::UNREACHABLE
            },
            stats: QueryStats {
                cpu: started.elapsed(),
                ..QueryStats::default()
            },
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: Time, a: u32, b: u32, p: f64) -> UncertainEvent {
        UncertainEvent {
            t,
            a: ObjectId(a.min(b)),
            b: ObjectId(a.max(b)),
            p,
        }
    }

    #[test]
    fn chain_probability_multiplies() {
        let events = vec![ev(0, 0, 1, 0.8), ev(1, 1, 2, 0.5)];
        let g = UReachGraph::build(3, 4, &events);
        let iv = TimeInterval::new(0, 3);
        let p = g.best_probability(ObjectId(0), ObjectId(2), iv, 1.1);
        assert!((p - 0.4).abs() < 1e-12);
        assert!(g.reachable(ObjectId(0), ObjectId(2), iv, 0.4));
        assert!(!g.reachable(ObjectId(0), ObjectId(2), iv, 0.41));
    }

    #[test]
    fn chronology_respected_under_uncertainty() {
        // Late first hop cannot precede the early second hop.
        let events = vec![ev(2, 0, 1, 0.9), ev(1, 1, 2, 0.9)];
        let g = UReachGraph::build(3, 4, &events);
        let p = g.best_probability(ObjectId(0), ObjectId(2), TimeInterval::new(0, 3), 1.1);
        assert_eq!(p, 0.0);
    }

    #[test]
    fn max_path_beats_shorter_lower_probability_path() {
        // Two routes 0→3: direct weak link (0.2) and a strong relay
        // (0.9 × 0.9 = 0.81).
        let events = vec![ev(0, 0, 3, 0.2), ev(1, 0, 1, 0.9), ev(2, 1, 3, 0.9)];
        let g = UReachGraph::build(4, 4, &events);
        let p = g.best_probability(ObjectId(0), ObjectId(3), TimeInterval::new(0, 3), 1.1);
        assert!((p - 0.81).abs() < 1e-12);
    }

    #[test]
    fn early_acquisition_with_lower_probability_can_still_win() {
        // Path A: acquire o1 at t=0 with p=0.3 → event at t=1 to dest (0.9).
        // Path B: acquire o1 at t=2 with p=0.95 — too late for the t=1 hop,
        // and no later hop exists. Pareto keeping both acquisitions matters.
        let events = vec![ev(0, 0, 1, 0.3), ev(1, 1, 3, 0.9), ev(2, 0, 1, 0.95)];
        let g = UReachGraph::build(4, 4, &events);
        let p = g.best_probability(ObjectId(0), ObjectId(3), TimeInterval::new(0, 3), 1.1);
        assert!((p - 0.27).abs() < 1e-12);
    }

    #[test]
    fn oracle_and_index_agree_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 6usize;
            let horizon = 30u32;
            let mut events = Vec::new();
            for t in 0..horizon {
                for a in 0..n as u32 {
                    for b in (a + 1)..n as u32 {
                        if rng.gen_bool(0.05) {
                            events.push(ev(t, a, b, rng.gen_range(0.1..=1.0)));
                        }
                    }
                }
            }
            let oracle = UncertainOracle::new(n, horizon, &events);
            let g = UReachGraph::build(n, horizon, &events);
            for s in 0..n as u32 {
                let iv = TimeInterval::new(0, horizon - 1);
                let best = oracle.best_probabilities(ObjectId(s), iv);
                for d in 0..n as u32 {
                    if s == d {
                        continue;
                    }
                    let got = g.best_probability(ObjectId(s), ObjectId(d), iv, f64::INFINITY);
                    assert!(
                        (got - best[d as usize]).abs() < 1e-9,
                        "seed {seed}: best prob {s}→{d}: index {got} vs oracle {}",
                        best[d as usize]
                    );
                }
            }
        }
    }

    #[test]
    fn early_termination_on_threshold() {
        let events = vec![ev(0, 0, 1, 0.9), ev(1, 1, 2, 0.9)];
        let g = UReachGraph::build(3, 4, &events);
        // Threshold met by the first hop already: returns promptly with a
        // qualifying (not necessarily maximal) probability.
        let p = g.best_probability(ObjectId(0), ObjectId(1), TimeInterval::new(0, 3), 0.5);
        assert!(p >= 0.5);
    }

    #[test]
    fn events_from_store_scale_with_distance() {
        use reach_core::{Environment, Point};
        use reach_traj::Trajectory;
        let env = Environment::square(100.0);
        let trajs = vec![
            Trajectory::new(ObjectId(0), 0, vec![Point::new(0.0, 0.0); 2]),
            Trajectory::new(
                ObjectId(1),
                0,
                vec![Point::new(1.0, 0.0), Point::new(9.0, 0.0)],
            ),
        ];
        let store = TrajectoryStore::new(env, trajs).unwrap();
        let events = events_from_store(&store, 10.0, 1.0, 1.0);
        assert_eq!(events.len(), 2);
        // Closer contact at t=0 → higher probability than the t=1 contact.
        assert!(events[0].p > events[1].p);
    }

    #[test]
    fn randomized_probabilities_in_range() {
        let evs = randomize_probabilities(&[(0, 0, 1), (1, 1, 2)], 0.25, 0.75, 7);
        assert_eq!(evs.len(), 2);
        for e in &evs {
            assert!(e.p >= 0.25 && e.p <= 0.75);
        }
        // Deterministic per seed.
        assert_eq!(
            randomize_probabilities(&[(0, 0, 1)], 0.2, 0.8, 3)[0].p,
            randomize_probabilities(&[(0, 0, 1)], 0.2, 0.8, 3)[0].p
        );
    }

    #[test]
    fn threshold_one_requires_certain_path() {
        let events = vec![ev(0, 0, 1, 1.0), ev(1, 1, 2, 0.99)];
        let g = UReachGraph::build(3, 4, &events);
        let iv = TimeInterval::new(0, 3);
        assert!(g.reachable(ObjectId(0), ObjectId(1), iv, 1.0));
        assert!(!g.reachable(ObjectId(0), ObjectId(2), iv, 1.0));
    }
}
