//! Non-immediate contacts (paper §7).
//!
//! A non-immediate contact from `o_i` to `o_j` occurs when `o_j`'s position
//! at `t'` is within `d_T` of `o_i`'s position at an *earlier* tick `t`
//! with `t' - t ≤ T_t` — the lifetime of the item outside a carrier (the
//! paper's example: a virus left in a bus infects a later passenger).
//! Contacts become *directed* (`o_i` at `t` → `o_j` at `t'`), so the
//! component-based reductions no longer apply; as the paper notes, the
//! machinery instead joins *replicated trajectories* — each position is
//! smeared over the following `T_t` ticks — and the propagation sweep works
//! on the resulting directed events.

use reach_core::{
    Answer, Coord, IndexError, ObjectId, Point, Query, QueryKind, QueryOutcome, QueryResult,
    QueryStats, ReachRequest, Time, TimeInterval,
};
use reach_traj::{SpatialHash, TrajectoryStore};

/// A directed non-immediate contact event: the item can pass from `from`
/// (who was at the meeting point at `emit`) to `to` (who is there at
/// `receive`), `emit ≤ receive ≤ emit + T_t`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DirectedEvent {
    /// Tick the receiving object is at the contaminated location.
    pub receive: Time,
    /// Tick the emitting object was there.
    pub emit: Time,
    /// Emitting object.
    pub from: ObjectId,
    /// Receiving object.
    pub to: ObjectId,
}

/// The replicated-trajectory join: all directed events of `store` with
/// threshold `d_T` and item lifetime `lifetime` ticks. `lifetime = 0`
/// degenerates to the symmetric immediate-contact join.
///
/// Implementation: for every receive tick `t'`, the positions at `t'` are
/// probed against a spatial hash of *replicated* positions — every object's
/// samples from `t' - lifetime ..= t'` — which is exactly joining the
/// replicated trajectories of the paper.
pub fn replicated_join(
    store: &TrajectoryStore,
    threshold: Coord,
    lifetime: Time,
) -> Vec<DirectedEvent> {
    let mut out = Vec::new();
    let horizon = store.horizon();
    if horizon == 0 {
        return out;
    }
    let n = store.num_objects();
    let mut hash = SpatialHash::new(threshold.max(1e-3));
    for t_recv in 0..horizon {
        let lo = t_recv.saturating_sub(lifetime);
        // Replicated positions: (object, emit tick) pairs tagged densely.
        hash.clear();
        let mut tags: Vec<(u32, Time)> = Vec::new();
        for tr in store.iter() {
            for t_emit in lo..=t_recv {
                let p = tr.positions[t_emit as usize];
                hash.insert(tags.len() as u32, p);
                tags.push((tr.object.0, t_emit));
            }
        }
        for o in 0..n as u32 {
            let p_recv = store
                .position(ObjectId(o), t_recv)
                .expect("tick inside horizon");
            let mut hits: Vec<(u32, Time)> = Vec::new();
            hash.for_neighbors(p_recv, |tag| {
                let (src, t_emit) = tags[tag as usize];
                if src != o {
                    let p_emit: Point = store
                        .position(ObjectId(src), t_emit)
                        .expect("tick inside horizon");
                    if p_emit.within(&p_recv, threshold) {
                        hits.push((src, t_emit));
                    }
                }
            });
            // Keep only the earliest emit per (from, to) pair at this
            // receive tick: it dominates all later emits.
            hits.sort_unstable();
            hits.dedup_by_key(|h| h.0);
            for (src, t_emit) in hits {
                out.push(DirectedEvent {
                    receive: t_recv,
                    emit: t_emit,
                    from: ObjectId(src),
                    to: ObjectId(o),
                });
            }
        }
    }
    out.sort_by_key(|e| (e.receive, e.from, e.to));
    out
}

/// Reachability evaluator over directed non-immediate events.
pub struct NonImmediateIndex {
    /// Events grouped by receive tick.
    per_tick: Vec<Vec<DirectedEvent>>,
    num_objects: usize,
}

impl NonImmediateIndex {
    /// Builds the per-tick event index.
    pub fn new(num_objects: usize, horizon: Time, events: &[DirectedEvent]) -> Self {
        let mut per_tick = vec![Vec::new(); horizon as usize];
        for &ev in events {
            if ev.receive < horizon {
                per_tick[ev.receive as usize].push(ev);
            }
        }
        Self {
            per_tick,
            num_objects,
        }
    }

    /// Builds directly from a store (join + index).
    pub fn build(store: &TrajectoryStore, threshold: Coord, lifetime: Time) -> Self {
        let events = replicated_join(store, threshold, lifetime);
        Self::new(store.num_objects(), store.horizon(), &events)
    }

    /// Infection tick per object for an item initiated by `source` at
    /// `interval.start`, propagated over directed events inside `interval`.
    /// `None` = never infected. The emitting object must have held the item
    /// by the emit tick (and the emit tick must lie inside the interval).
    pub fn spread(&self, source: ObjectId, interval: TimeInterval) -> Vec<Option<Time>> {
        let mut when: Vec<Option<Time>> = vec![None; self.num_objects];
        if source.index() >= self.num_objects {
            return when;
        }
        when[source.index()] = Some(interval.start);
        for t in interval.ticks() {
            let Some(events) = self.per_tick.get(t as usize) else {
                break;
            };
            // Same-tick chains (receive and re-emit at the same tick) need a
            // fixpoint.
            loop {
                let mut changed = false;
                for ev in events {
                    if ev.emit < interval.start || when[ev.to.index()].is_some() {
                        continue;
                    }
                    if let Some(acquired) = when[ev.from.index()] {
                        if acquired <= ev.emit {
                            when[ev.to.index()] = Some(t);
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
        }
        when
    }

    /// Reachability verdict plus earliest arrival.
    pub fn reachable(
        &self,
        source: ObjectId,
        dest: ObjectId,
        interval: TimeInterval,
    ) -> (bool, Option<Time>) {
        if source == dest {
            return (true, Some(interval.start));
        }
        let when = self.spread(source, interval);
        match when.get(dest.index()).copied().flatten() {
            Some(t) => (true, Some(t)),
            None => (false, None),
        }
    }
}

impl reach_core::ReachabilityIndex for NonImmediateIndex {
    fn name(&self) -> &'static str {
        "NonImmediate"
    }

    /// Non-immediate propagation *is* this index's native reachability
    /// semantics, so both [`QueryKind::Reach`]
    /// and [`QueryKind::NonImmediate`]
    /// requests evaluate here.
    fn evaluate(&mut self, query: &Query) -> Result<QueryResult, IndexError> {
        let started = std::time::Instant::now();
        let (ok, earliest) = self.reachable(query.source, query.dest, query.interval);
        Ok(QueryResult {
            outcome: QueryOutcome {
                reachable: ok,
                earliest,
            },
            stats: QueryStats {
                cpu: started.elapsed(),
                ..QueryStats::default()
            },
        })
    }

    fn answer(&mut self, request: &ReachRequest) -> Result<Answer, IndexError> {
        match request.kind {
            QueryKind::Reach | QueryKind::NonImmediate => {
                self.evaluate(&request.query).map(Answer::from)
            }
            _ => Err(request.unsupported(self.name())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_contact::Oracle;
    use reach_core::Environment;
    use reach_traj::Trajectory;

    fn store_from_rows(rows: Vec<Vec<(f32, f32)>>) -> TrajectoryStore {
        let env = Environment::square(1000.0);
        let trajs = rows
            .into_iter()
            .enumerate()
            .map(|(i, ps)| {
                Trajectory::new(
                    ObjectId(i as u32),
                    0,
                    ps.into_iter().map(|(x, y)| Point::new(x, y)).collect(),
                )
            })
            .collect();
        TrajectoryStore::new(env, trajs).unwrap()
    }

    /// The paper's bus scenario: o0 is at the bus stop at t=0 then leaves;
    /// o1 arrives at the same spot at t=2 — they never meet.
    fn bus_store() -> TrajectoryStore {
        store_from_rows(vec![
            vec![(0.0, 0.0), (100.0, 0.0), (200.0, 0.0), (300.0, 0.0)],
            vec![(500.0, 0.0), (400.0, 0.0), (0.5, 0.0), (0.5, 0.0)],
        ])
    }

    #[test]
    fn zero_lifetime_matches_immediate_oracle() {
        // With T_t = 0, non-immediate reachability must equal the standard
        // contact-network semantics.
        let store = store_from_rows(vec![
            vec![(0.0, 0.0), (10.0, 0.0), (20.0, 0.0), (30.0, 0.0)],
            vec![(1.0, 0.0), (50.0, 0.0), (20.5, 0.0), (90.0, 0.0)],
            vec![(200.0, 0.0), (200.0, 0.0), (200.0, 0.0), (31.0, 0.0)],
        ]);
        let idx = NonImmediateIndex::build(&store, 2.0, 0);
        let oracle = Oracle::build(&store, 2.0);
        for s in 0..3u32 {
            for d in 0..3u32 {
                let iv = TimeInterval::new(0, 3);
                let q = reach_core::Query::new(ObjectId(s), ObjectId(d), iv);
                assert_eq!(
                    idx.reachable(ObjectId(s), ObjectId(d), iv).0,
                    oracle.evaluate(&q).reachable,
                    "T_t=0 disagreement for {s}→{d}"
                );
            }
        }
    }

    #[test]
    fn bus_scenario_requires_lifetime() {
        let store = bus_store();
        let iv = TimeInterval::new(0, 3);
        // Without lifetime: never in contact.
        let strict = NonImmediateIndex::build(&store, 1.0, 0);
        assert!(!strict.reachable(ObjectId(0), ObjectId(1), iv).0);
        // With a 2-tick lifetime, o1 picks the item up at t=2 from o0's
        // t=0 position.
        let loose = NonImmediateIndex::build(&store, 1.0, 2);
        let (ok, when) = loose.reachable(ObjectId(0), ObjectId(1), iv);
        assert!(ok);
        assert_eq!(when, Some(2));
        // A 1-tick lifetime is too short (gap is 2 ticks).
        let short = NonImmediateIndex::build(&store, 1.0, 1);
        assert!(!short.reachable(ObjectId(0), ObjectId(1), iv).0);
    }

    #[test]
    fn non_immediate_contacts_are_directional() {
        let store = bus_store();
        let iv = TimeInterval::new(0, 3);
        let idx = NonImmediateIndex::build(&store, 1.0, 2);
        // o0 leaves something for o1, not vice versa: o0 is never at a spot
        // o1 occupied earlier.
        assert!(idx.reachable(ObjectId(0), ObjectId(1), iv).0);
        assert!(!idx.reachable(ObjectId(1), ObjectId(0), iv).0);
    }

    #[test]
    fn lifetime_monotonicity() {
        // Larger lifetimes can only add reachability.
        let store = bus_store();
        let iv = TimeInterval::new(0, 3);
        let mut reached_before = false;
        for lifetime in 0..=3u32 {
            let idx = NonImmediateIndex::build(&store, 1.0, lifetime);
            let now = idx.reachable(ObjectId(0), ObjectId(1), iv).0;
            assert!(
                now || !reached_before,
                "reachability lost at T_t={lifetime}"
            );
            reached_before = now;
        }
    }

    #[test]
    fn emit_must_lie_inside_the_query_interval() {
        let store = bus_store();
        // Interval starting at t=1: o0's contamination at t=0 precedes the
        // item's initiation, so o1 must not be infected.
        let idx = NonImmediateIndex::build(&store, 1.0, 2);
        let (ok, _) = idx.reachable(ObjectId(0), ObjectId(1), TimeInterval::new(1, 3));
        assert!(!ok, "emission before the item existed must not count");
    }

    #[test]
    fn replicated_join_event_shape() {
        let store = bus_store();
        let events = replicated_join(&store, 1.0, 2);
        assert!(events.iter().any(|e| e.from == ObjectId(0)
            && e.to == ObjectId(1)
            && e.receive == 2
            && e.emit == 0));
        for e in &events {
            assert!(e.emit <= e.receive);
            assert!(e.receive - e.emit <= 2);
            assert_ne!(e.from, e.to);
        }
    }

    #[test]
    fn chained_relay_through_time() {
        // o0 contaminates a spot at t=0; o1 picks it up at t=1, carries it
        // and drops it at a second spot at t=2; o2 collects at t=3.
        let store = store_from_rows(vec![
            vec![(0.0, 0.0), (50.0, 50.0), (50.0, 50.0), (50.0, 50.0)],
            vec![(20.0, 0.0), (0.4, 0.0), (10.0, 0.0), (70.0, 0.0)],
            vec![(90.0, 0.0), (90.0, 0.0), (90.0, 0.0), (10.2, 0.0)],
        ]);
        let idx = NonImmediateIndex::build(&store, 1.0, 1);
        let iv = TimeInterval::new(0, 3);
        let (ok, when) = idx.reachable(ObjectId(0), ObjectId(2), iv);
        assert!(ok, "two-stage non-immediate relay must succeed");
        assert_eq!(when, Some(3));
    }
}
