//! Decay-weighted and top-k reachability (Strzheletska & Tsotras,
//! PAPERS.md), with a brute-force validation oracle.
//!
//! The production engines live in [`reach_graph::decay`] and run over any
//! [`HnSource`](reach_graph::HnSource); this module contributes the
//! *specification*: a
//! [`DecayOracle`] that enumerates every in-window deviation-network path
//! explicitly — no best-first ordering, no dominance reasoning, no
//! pruning — and scores objects straight from the definition
//! `w = per_transfer^h · per_tick^(e − t1)`. Because both the oracle and
//! the engines evaluate weights through [`DecayModel::weight`]
//! (canonical `powi`), agreement is exact, not approximate: tests compare
//! `f64`s with `==`.
//!
//! The full query-semantics contract (what counts as a transfer, how
//! ties break, which index answers which kind) is documented in the
//! repository's `QUERIES.md`.

use reach_contact::DnGraph;
use reach_core::{ObjectId, Time, TimeInterval};
use std::collections::{HashMap, HashSet, VecDeque};

pub use reach_core::decay::{DecayModel, RankDirection, Ranked};
pub use reach_graph::decay::{
    decay_reachable, decay_states_seeded, top_k_reachable, top_k_reaching,
};

/// Exhaustive path-enumeration oracle over an in-memory deviation
/// network.
///
/// Enumerates every `(node, transfers)` state reachable from the query
/// source inside the window — each DN₁ edge advances time by at least one
/// tick, so the state space is finite — and derives per-object best
/// weights by taking the maximum over all enumerated deliveries. This is
/// the semantics the best-first engines must reproduce; keep it dumb.
///
/// ```
/// use reach_contact::DnGraph;
/// use reach_core::{ObjectId, TimeInterval};
/// use reach_ext::decay::{DecayModel, DecayOracle};
///
/// // Objects 0-1 meet at tick 0, objects 1-2 at tick 2.
/// let ticks: Vec<Vec<(u32, u32)>> = vec![vec![(0, 1)], vec![], vec![(1, 2)]];
/// let dn = DnGraph::build_from_ticks(3, 3, |t| ticks[t as usize].as_slice());
/// let oracle = DecayOracle::new(&dn);
/// let model = DecayModel::per_transfer(0.5);
/// let best = oracle.best_weights(ObjectId(0), TimeInterval::new(0, 2), &model);
/// // Reaching object 2 takes two transfers: weight 0.25.
/// assert_eq!(oracle.lookup(&best, ObjectId(2)), Some((0.25, 2)));
/// ```
pub struct DecayOracle<'a> {
    dn: &'a DnGraph,
}

impl<'a> DecayOracle<'a> {
    /// Wraps a built deviation network.
    pub fn new(dn: &'a DnGraph) -> Self {
        Self { dn }
    }

    /// Best weight and earliest maximum-weight arrival for *every* object
    /// reachable from `source` inside `interval` (the source scores
    /// itself with weight `per_tick^0 · per_transfer^0 = 1`).
    pub fn best_weights(
        &self,
        source: ObjectId,
        interval: TimeInterval,
        model: &DecayModel,
    ) -> Vec<(ObjectId, f64, Time)> {
        let horizon = self.dn.horizon();
        if source.index() >= self.dn.num_objects() || interval.start >= horizon {
            return Vec::new();
        }
        let (t1, t2) = (interval.start, interval.end.min(horizon - 1));
        let seed = self.dn.node_of(source, t1).0;

        // Every (node, transfers) state, breadth-first. Entry tick is a
        // function of the state: t1 for the seed, node.start otherwise
        // (a DN₁ edge u→v always enters v at v.interval.start, and the
        // seed node can never be edge-entered inside the window because
        // its interval already covers t1).
        let mut seen: HashSet<(u32, u32)> = HashSet::new();
        let mut queue: VecDeque<(u32, u32)> = VecDeque::new();
        seen.insert((seed, 0));
        queue.push_back((seed, 0));
        let mut best: HashMap<ObjectId, (f64, Time)> = HashMap::new();
        while let Some((v, h)) = queue.pop_front() {
            let node = self.dn.node(v);
            let entry = if h == 0 { t1 } else { node.interval.start };
            let weight = model.weight(h, entry - t1);
            for &m in &node.members {
                let better = match best.get(&m) {
                    Some(&(w, e)) => weight > w || (weight == w && entry < e),
                    None => true,
                };
                if better {
                    best.insert(m, (weight, entry));
                }
            }
            if node.interval.end < t2 {
                for &w in self.dn.fwd(v) {
                    if seen.insert((w, h + 1)) {
                        queue.push_back((w, h + 1));
                    }
                }
            }
        }
        let mut out: Vec<(ObjectId, f64, Time)> =
            best.into_iter().map(|(o, (w, e))| (o, w, e)).collect();
        out.sort_by_key(|&(o, _, _)| o);
        out
    }

    /// Finds an object inside a [`Self::best_weights`] result.
    pub fn lookup(&self, best: &[(ObjectId, f64, Time)], dest: ObjectId) -> Option<(f64, Time)> {
        best.iter()
            .find(|&&(o, _, _)| o == dest)
            .map(|&(_, w, e)| (w, e))
    }

    /// Point decay verdict: `dest`'s best weight and arrival if that
    /// weight clears `theta`.
    pub fn decay_reachable(
        &self,
        source: ObjectId,
        dest: ObjectId,
        interval: TimeInterval,
        model: &DecayModel,
        theta: f64,
    ) -> Option<(f64, Time)> {
        self.lookup(&self.best_weights(source, interval, model), dest)
            .filter(|&(w, _)| w >= theta)
    }

    /// Ranks `best_weights` output into top-k order — weight descending,
    /// arrival ascending, object id ascending — excluding the anchor.
    pub fn rank(best: &[(ObjectId, f64, Time)], anchor: ObjectId, k: usize) -> Vec<Ranked> {
        let mut out: Vec<Ranked> = best
            .iter()
            .filter(|&&(o, _, _)| o != anchor)
            .map(|&(object, weight, arrival)| Ranked {
                object,
                weight,
                arrival,
            })
            .collect();
        out.sort_by(|a, b| {
            b.weight
                .partial_cmp(&a.weight)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.arrival.cmp(&b.arrival))
                .then_with(|| a.object.cmp(&b.object))
        });
        out.truncate(k);
        out
    }

    /// Top-k objects reachable *from* `anchor`, straight from the
    /// definition.
    pub fn top_k_reachable(
        &self,
        anchor: ObjectId,
        interval: TimeInterval,
        k: usize,
        model: &DecayModel,
    ) -> Vec<Ranked> {
        Self::rank(&self.best_weights(anchor, interval, model), anchor, k)
    }

    /// Top-k objects *reaching* `anchor`: one forward enumeration per
    /// candidate source, ranked by the weight each delivers to the
    /// anchor. Quadratic and proud of it — it is the specification.
    pub fn top_k_reaching(
        &self,
        anchor: ObjectId,
        interval: TimeInterval,
        k: usize,
        model: &DecayModel,
    ) -> Vec<Ranked> {
        let mut best: Vec<(ObjectId, f64, Time)> = Vec::new();
        for o in 0..self.dn.num_objects() as u32 {
            let source = ObjectId(o);
            if source == anchor {
                continue;
            }
            if let Some((w, e)) = self.lookup(&self.best_weights(source, interval, model), anchor) {
                best.push((source, w, e));
            }
        }
        Self::rank(&best, anchor, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use reach_contact::{DnGraph, MultiRes, DEFAULT_LEVELS};
    use reach_graph::MemoryHn;

    fn random_dn(seed: u64, n: usize, horizon: Time, density: f64) -> DnGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let script: Vec<Vec<(u32, u32)>> = (0..horizon)
            .map(|_| {
                let mut pairs = Vec::new();
                for a in 0..n as u32 {
                    for b in (a + 1)..n as u32 {
                        if rng.gen_bool(density) {
                            pairs.push((a, b));
                        }
                    }
                }
                pairs
            })
            .collect();
        let dn = DnGraph::build_from_ticks(n, horizon, |t| script[t as usize].as_slice());
        dn.validate().unwrap();
        dn
    }

    fn models() -> Vec<DecayModel> {
        vec![
            DecayModel::per_transfer(0.5),
            DecayModel::per_tick(0.9),
            DecayModel::new(0.7, 0.95).unwrap(),
            DecayModel::new(1.0, 1.0).unwrap(),
        ]
    }

    #[test]
    fn engine_matches_oracle_point_queries() {
        for seed in 0..6u64 {
            let n = 7;
            let horizon = 60;
            let dn = random_dn(seed, n, horizon, 0.03);
            let mr = MultiRes::build(&dn, &DEFAULT_LEVELS);
            let mut hn = MemoryHn::new(&dn, &mr);
            let oracle = DecayOracle::new(&dn);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xD15C);
            for model in models() {
                for _ in 0..25 {
                    let s = ObjectId(rng.gen_range(0..n as u32));
                    let d = ObjectId(rng.gen_range(0..n as u32));
                    let a = rng.gen_range(0..horizon);
                    let b = rng.gen_range(a..horizon);
                    let iv = TimeInterval::new(a, b);
                    let theta = [0.0, 0.05, 0.3, 0.8][rng.gen_range(0..4usize)];
                    let (got, _) = decay_reachable(&mut hn, s, d, iv, &model, theta).unwrap();
                    let want = oracle.decay_reachable(s, d, iv, &model, theta);
                    assert_eq!(got, want, "seed {seed} {s:?}->{d:?} {iv} θ={theta}");
                }
            }
        }
    }

    #[test]
    fn engine_matches_oracle_top_k_both_directions() {
        for seed in 0..4u64 {
            let n = 6;
            let horizon = 50;
            let dn = random_dn(seed.wrapping_mul(7).wrapping_add(1), n, horizon, 0.04);
            let mr = MultiRes::build(&dn, &DEFAULT_LEVELS);
            let mut hn = MemoryHn::new(&dn, &mr);
            let oracle = DecayOracle::new(&dn);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x70CC);
            for model in models() {
                for _ in 0..12 {
                    let anchor = ObjectId(rng.gen_range(0..n as u32));
                    let a = rng.gen_range(0..horizon);
                    let b = rng.gen_range(a..horizon);
                    let iv = TimeInterval::new(a, b);
                    let k = rng.gen_range(1..=n);
                    let (fwd, _) = top_k_reachable(&mut hn, anchor, iv, k, &model).unwrap();
                    assert_eq!(
                        fwd,
                        oracle.top_k_reachable(anchor, iv, k, &model),
                        "forward seed {seed} {anchor:?} {iv} k={k}"
                    );
                    let (rev, _) = top_k_reaching(&mut hn, anchor, iv, k, &model).unwrap();
                    assert_eq!(
                        rev,
                        oracle.top_k_reaching(anchor, iv, k, &model),
                        "reverse seed {seed} {anchor:?} {iv} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn threshold_pruning_never_changes_verdicts() {
        // A high theta must filter exactly to the >= theta subset of the
        // theta=0 answer, never invent or lose weights.
        let dn = random_dn(11, 6, 40, 0.05);
        let mr = MultiRes::build(&dn, &DEFAULT_LEVELS);
        let mut hn = MemoryHn::new(&dn, &mr);
        let model = DecayModel::new(0.6, 0.97).unwrap();
        let iv = TimeInterval::new(0, 39);
        for s in 0..6u32 {
            for d in 0..6u32 {
                let (open, _) =
                    decay_reachable(&mut hn, ObjectId(s), ObjectId(d), iv, &model, 0.0).unwrap();
                for theta in [0.1, 0.4, 0.9] {
                    let (gated, _) =
                        decay_reachable(&mut hn, ObjectId(s), ObjectId(d), iv, &model, theta)
                            .unwrap();
                    assert_eq!(gated, open.filter(|&(w, _)| w >= theta));
                }
            }
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_world() -> impl Strategy<Value = (u64, f64, f64)> {
            (0u64..200, 0.3f64..1.0, 0.85f64..1.0)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            #[test]
            fn point_and_topk_agree_with_oracle((seed, ptr, ptk) in arb_world()) {
                let n = 5;
                let horizon = 30;
                let dn = random_dn(seed, n, horizon, 0.06);
                let mr = MultiRes::build(&dn, &DEFAULT_LEVELS);
                let mut hn = MemoryHn::new(&dn, &mr);
                let oracle = DecayOracle::new(&dn);
                let model = DecayModel::new(ptr, ptk).unwrap();
                let iv = TimeInterval::new(0, horizon - 1);
                for s in 0..n as u32 {
                    let anchor = ObjectId(s);
                    let (fwd, _) = top_k_reachable(&mut hn, anchor, iv, 3, &model).unwrap();
                    prop_assert_eq!(fwd, oracle.top_k_reachable(anchor, iv, 3, &model));
                    let (rev, _) = top_k_reaching(&mut hn, anchor, iv, 3, &model).unwrap();
                    prop_assert_eq!(rev, oracle.top_k_reaching(anchor, iv, 3, &model));
                    for d in 0..n as u32 {
                        let (got, _) = decay_reachable(
                            &mut hn, anchor, ObjectId(d), iv, &model, 0.25,
                        ).unwrap();
                        prop_assert_eq!(
                            got,
                            oracle.decay_reachable(anchor, ObjectId(d), iv, &model, 0.25)
                        );
                    }
                }
            }
        }
    }
}
