//! The worked examples of `DATAFORMATS.md`, parsed verbatim as fixtures.
//!
//! Every fenced block tagged ```` ```trace ```` in the document is extracted
//! and fed to the loader; the assertions below mirror the tables printed
//! next to each example. If the document and the parsers drift apart, this
//! test fails — the format contract is executable.

use reach_contact::{ContactTrace, IngestOptions, Oracle};
use reach_core::{ObjectId, Query, TimeInterval};

const DOC: &str = include_str!("../../../DATAFORMATS.md");

/// Extracts the contents of every ```` ```trace ```` fenced block, in order.
fn trace_blocks() -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in DOC.lines() {
        match &mut current {
            None if line.trim() == "```trace" => current = Some(String::new()),
            None => {}
            Some(buf) => {
                if line.trim() == "```" {
                    blocks.push(current.take().expect("block open"));
                } else {
                    buf.push_str(line);
                    buf.push('\n');
                }
            }
        }
    }
    assert!(current.is_none(), "unterminated ```trace block");
    blocks
}

fn contact(trace: &ContactTrace, i: usize) -> (u32, u32, TimeInterval) {
    let c = trace.contacts()[i];
    (c.a.0, c.b.0, c.interval)
}

#[test]
fn document_has_exactly_two_worked_examples() {
    assert_eq!(trace_blocks().len(), 2);
}

#[test]
fn example_1_is_the_papers_figure_1() {
    let text = &trace_blocks()[0];
    let trace = ContactTrace::parse(text, &IngestOptions::default()).expect("example 1 parses");
    assert_eq!(trace.num_objects(), 4);
    assert_eq!(trace.horizon(), 4);
    assert_eq!(trace.skipped(), 0);
    assert!(trace.numeric_identity());
    // The paper's four contacts c1..c4, sorted by (start, a, b).
    assert_eq!(trace.contacts().len(), 4);
    assert_eq!(contact(&trace, 0), (0, 1, TimeInterval::new(0, 0)));
    assert_eq!(contact(&trace, 1), (1, 3, TimeInterval::new(1, 1)));
    assert_eq!(contact(&trace, 2), (2, 3, TimeInterval::new(1, 2)));
    assert_eq!(contact(&trace, 3), (0, 1, TimeInterval::new(2, 3)));
    // The running reachability example: o4 from o1 during [0,1], not vice
    // versa — checked on the DN-backed oracle events and the DN itself.
    let dn = trace.build_dn();
    dn.validate().expect("valid DN");
    assert_eq!(dn.num_nodes(), 9, "the Figure 4/5 reduction");
    let per_tick = per_tick_events(&trace);
    let oracle = Oracle::from_events(trace.num_objects(), per_tick);
    let q = |s: u32, d: u32| Query::new(ObjectId(s), ObjectId(d), TimeInterval::new(0, 1));
    assert!(oracle.evaluate(&q(0, 3)).reachable);
    assert!(!oracle.evaluate(&q(3, 0)).reachable);
}

#[test]
fn example_2_scales_time_and_merges_abutting_records() {
    let text = &trace_blocks()[1];
    let trace = ContactTrace::parse(text, &IngestOptions::default()).expect("example 2 parses");
    assert_eq!(trace.num_objects(), 4);
    assert_eq!(trace.horizon(), 8);
    assert_eq!(trace.records(), 4);
    // Lexicographic dense mapping.
    assert_eq!(trace.label(ObjectId(0)), "alice");
    assert_eq!(trace.label(ObjectId(1)), "bob");
    assert_eq!(trace.label(ObjectId(2)), "carol");
    assert_eq!(trace.label(ObjectId(3)), "dave");
    // Three contacts after the alice–bob merge.
    assert_eq!(trace.contacts().len(), 3);
    assert_eq!(contact(&trace, 0), (0, 1, TimeInterval::new(0, 4)));
    assert_eq!(contact(&trace, 1), (1, 2, TimeInterval::new(5, 7)));
    assert_eq!(contact(&trace, 2), (2, 3, TimeInterval::new(6, 6)));
    // dave reachable from alice over [0,7]; not the other way.
    let oracle = Oracle::from_events(4, per_tick_events(&trace));
    let alice = trace.resolve("alice").unwrap();
    let dave = trace.resolve("dave").unwrap();
    let window = TimeInterval::new(0, 7);
    assert!(oracle.evaluate(&Query::new(alice, dave, window)).reachable);
    assert!(!oracle.evaluate(&Query::new(dave, alice, window)).reachable);
}

/// Expands a trace's contacts into the per-tick event lists the oracle
/// consumes.
fn per_tick_events(trace: &ContactTrace) -> Vec<Vec<(u32, u32)>> {
    let mut per_tick = vec![Vec::new(); trace.horizon() as usize];
    for c in trace.contacts() {
        for t in c.interval.ticks() {
            per_tick[t as usize].push((c.a.0, c.b.0));
        }
    }
    per_tick
}
