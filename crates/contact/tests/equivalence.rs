//! Cross-representation equivalence: the reduced DAG `DN` must preserve
//! reachability exactly (the paper's reductions are lossless), and the DN's
//! hold sets must agree with brute-force per-tick propagation.

use proptest::prelude::*;
use reach_contact::{hold_set_dn1, DnGraph, Oracle};
use reach_core::{ObjectId, Query, TimeInterval};

/// Random event script: `script[t]` = pairs in contact at tick `t`.
fn script_strategy(
    max_objects: usize,
    max_horizon: usize,
) -> impl Strategy<Value = (usize, Vec<Vec<(u32, u32)>>)> {
    (2..=max_objects, 1..=max_horizon).prop_flat_map(move |(n, h)| {
        let pair = (0..n as u32, 0..n as u32)
            .prop_filter_map("distinct", |(a, b)| (a != b).then(|| (a.min(b), a.max(b))));
        let tick = prop::collection::vec(pair, 0..4);
        prop::collection::vec(tick, h).prop_map(move |script| (n, script))
    })
}

/// Reachability on DN alone: recursive hold-set chase from the source's node.
fn dn_reachable(dn: &DnGraph, q: &Query) -> bool {
    if q.source == q.dest {
        return true;
    }
    // The item starts in the source's component at t1 and spreads along DN1
    // edges; dest is reachable iff some visited node (arrival ≤ t2) contains
    // it. Nodes visited = hold sets at every death boundary; equivalently a
    // DFS over DN1 edges bounded by t2.
    let mut stack = vec![dn.node_of(q.source, q.interval.start).0];
    let mut seen = std::collections::HashSet::new();
    while let Some(v) = stack.pop() {
        if !seen.insert(v) {
            continue;
        }
        let node = dn.node(v);
        if node.interval.start > q.interval.end {
            continue;
        }
        if node.contains(q.dest) {
            return true;
        }
        if node.interval.end < q.interval.end {
            for &w in dn.fwd(v) {
                stack.push(w);
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// DN reachability ≡ oracle reachability, for every source/dest pair and
    /// a sample of intervals.
    #[test]
    fn dn_preserves_reachability((n, script) in script_strategy(6, 16)) {
        let h = script.len() as u32;
        let dn = DnGraph::build_from_ticks(n, h, |t| script[t as usize].as_slice());
        dn.validate().map_err(TestCaseError::fail)?;
        let oracle = Oracle::from_events(n, script.clone());
        for s in 0..n as u32 {
            for d in 0..n as u32 {
                for (t1, t2) in [(0, h - 1), (0, h / 2), (h / 2, h - 1), (h / 3, (2 * h / 3).max(h / 3))] {
                    let q = Query::new(ObjectId(s), ObjectId(d), TimeInterval::new(t1, t2));
                    let expected = oracle.evaluate(&q).reachable;
                    let got = dn_reachable(&dn, &q);
                    prop_assert_eq!(
                        got, expected,
                        "disagreement on {} (n={}, h={})", q, n, h
                    );
                }
            }
        }
    }

    /// The hold set computed on DN at any boundary equals the oracle's
    /// infected-membership partition: the union of members over the hold set
    /// is exactly the infected object set at that tick.
    #[test]
    fn hold_sets_match_oracle_infection((n, script) in script_strategy(6, 12)) {
        let h = script.len() as u32;
        let dn = DnGraph::build_from_ticks(n, h, |t| script[t as usize].as_slice());
        let oracle = Oracle::from_events(n, script.clone());
        for s in 0..n as u32 {
            let src = ObjectId(s);
            let start = dn.node_of(src, 0).0;
            for to_t in 0..h {
                let holders = hold_set_dn1(&dn, start, to_t);
                let mut objs: Vec<u32> = holders
                    .iter()
                    .flat_map(|&v| dn.node(v).members.iter().map(|m| m.0))
                    .collect();
                objs.sort_unstable();
                objs.dedup();
                let (infected, _) = oracle.spread(src, TimeInterval::new(0, to_t), None);
                let expected: Vec<u32> = (0..n as u32)
                    .filter(|&o| infected[o as usize])
                    .collect();
                prop_assert_eq!(
                    objs, expected,
                    "hold set mismatch from {} at t={} (h={})", src, to_t, h
                );
            }
        }
    }

    /// Oracle earliest-arrival is monotone in the interval: extending the
    /// query interval can only add reachable destinations.
    #[test]
    fn oracle_monotone_in_interval((n, script) in script_strategy(6, 12)) {
        let h = script.len() as u32;
        let oracle = Oracle::from_events(n, script);
        for s in 0..n as u32 {
            for d in 0..n as u32 {
                let mut was_reachable = false;
                for t2 in 0..h {
                    let q = Query::new(ObjectId(s), ObjectId(d), TimeInterval::new(0, t2));
                    let now = oracle.evaluate(&q).reachable;
                    prop_assert!(now || !was_reachable, "reachability lost when extending interval");
                    was_reachable = now;
                }
            }
        }
    }
}
