//! Ingestion round-trip properties: serializing a contact network to either
//! trace format and re-ingesting it must reproduce the *exact* reduced DAG —
//! the loaders' correctness contract (ISSUE 3 acceptance criterion).

use proptest::prelude::*;
use reach_contact::ingest::{embed, write_events, write_intervals, EMBED_THRESHOLD};
use reach_contact::{ContactTrace, DnGraph, IngestOptions};
use reach_core::{ContactAccumulator, ContactEvent, ObjectId, Time};

/// Random event script: `script[t]` = pairs in contact at tick `t`.
fn script_strategy(
    max_objects: usize,
    max_horizon: usize,
) -> impl Strategy<Value = (usize, Vec<Vec<(u32, u32)>>)> {
    (2..=max_objects, 1..=max_horizon).prop_flat_map(move |(n, h)| {
        let pair = (0..n as u32, 0..n as u32)
            .prop_filter_map("distinct", |(a, b)| (a != b).then(|| (a.min(b), a.max(b))));
        let tick = prop::collection::vec(pair, 0..4);
        prop::collection::vec(tick, h).prop_map(move |script| (n, script))
    })
}

fn trace_of_script(n: usize, script: &[Vec<(u32, u32)>]) -> ContactTrace {
    let mut acc = ContactAccumulator::new();
    for (t, pairs) in script.iter().enumerate() {
        for &(a, b) in pairs {
            acc.push(ContactEvent::new(t as Time, ObjectId(a), ObjectId(b)));
        }
    }
    ContactTrace::from_parts(n, script.len() as Time, acc.finish()).expect("script fits universe")
}

fn assert_same_dn(a: &DnGraph, b: &DnGraph, what: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.num_objects(), b.num_objects(), "{}: |O|", what);
    prop_assert_eq!(a.horizon(), b.horizon(), "{}: |T|", what);
    prop_assert_eq!(a.nodes(), b.nodes(), "{}: nodes", what);
    for v in 0..a.num_nodes() as u32 {
        prop_assert_eq!(a.fwd(v), b.fwd(v), "{}: out-edges of {}", what, v);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// write_events ∘ load and write_intervals ∘ load are both DN-identity.
    #[test]
    fn serialized_traces_rebuild_the_same_dn((n, script) in script_strategy(6, 20)) {
        let h = script.len() as Time;
        let reference = DnGraph::build_from_ticks(n, h, |t| script[t as usize].as_slice());
        reference.validate().map_err(TestCaseError::fail)?;
        let trace = trace_of_script(n, &script);
        assert_same_dn(&reference, &trace.build_dn(), "from_parts")?;

        let mut events = Vec::new();
        write_events(&trace, &mut events).expect("in-memory write");
        let back = ContactTrace::parse(std::str::from_utf8(&events).unwrap(), &IngestOptions::default())
            .expect("events re-ingest");
        prop_assert_eq!(back.contacts(), trace.contacts());
        assert_same_dn(&reference, &back.build_dn(), "events round trip")?;

        let mut intervals = Vec::new();
        write_intervals(&trace, &mut intervals).expect("in-memory write");
        let back = ContactTrace::parse(std::str::from_utf8(&intervals).unwrap(), &IngestOptions::default())
            .expect("intervals re-ingest");
        prop_assert_eq!(back.contacts(), trace.contacts());
        assert_same_dn(&reference, &back.build_dn(), "intervals round trip")?;
    }

    /// The component-colocation embedding preserves the DN exactly: building
    /// from the embedded trajectories through the full §4 spatial join gives
    /// the same DAG as the event-direct path.
    #[test]
    fn embedding_preserves_the_dn((n, script) in script_strategy(5, 12)) {
        let trace = trace_of_script(n, &script);
        let direct = trace.build_dn();
        let via_store = DnGraph::build(&embed(&trace), EMBED_THRESHOLD);
        via_store.validate().map_err(TestCaseError::fail)?;
        assert_same_dn(&direct, &via_store, "embedding")?;
    }

    /// Lossy ingestion of a clean trace skips nothing and strict ingestion
    /// of a dirtied trace pinpoints the first bad line.
    #[test]
    fn lossy_and_strict_agree_on_clean_input((n, script) in script_strategy(5, 10)) {
        let trace = trace_of_script(n, &script);
        let mut buf = Vec::new();
        write_events(&trace, &mut buf).expect("in-memory write");
        let text = String::from_utf8(buf).unwrap();
        let lossy = ContactTrace::parse(&text, &IngestOptions::lossy()).expect("clean trace");
        prop_assert_eq!(lossy.skipped(), 0);
        prop_assert_eq!(lossy.contacts(), trace.contacts());

        let dirty = format!("{text}garbage line\n");
        let strict = ContactTrace::parse(&dirty, &IngestOptions::default());
        prop_assert!(strict.is_err());
        let lossy = ContactTrace::parse(&dirty, &IngestOptions::lossy()).expect("lossy survives");
        prop_assert_eq!(lossy.skipped(), 1);
        prop_assert_eq!(lossy.contacts(), trace.contacts());
    }
}
