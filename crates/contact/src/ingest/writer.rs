//! Synthetic-trace writers: serialize a [`ContactTrace`] back into the text
//! formats the parsers accept.
//!
//! The writers exist so the workspace can round-trip without network access:
//! CI generates a synthetic dataset, extracts its contacts, *writes* them as
//! a trace, re-ingests the file, and asserts the loader-built DN is
//! edge-identical to the trajectory-built one. They always emit a full
//! directive header (`kind`, `num_objects`, `horizon`, `origin=0`,
//! `time_scale=1`, and `ids=numeric` when labels are the decimal ids), which
//! is exactly what makes the round trip lossless — a bare edge list cannot
//! name silent objects or trailing silent ticks.

use super::ContactTrace;
use std::io::{self, Write};

/// Writes `trace` as a temporal edge list, one `u v t duration` line per
/// maximal contact, preceded by the directive header.
pub fn write_events<W: Write>(trace: &ContactTrace, mut w: W) -> io::Result<()> {
    header(trace, "events", &mut w)?;
    for c in trace.contacts() {
        writeln!(
            w,
            "{} {} {} {}",
            trace.label(c.a),
            trace.label(c.b),
            c.interval.start,
            c.interval.len()
        )?;
    }
    Ok(())
}

/// Writes `trace` as interval contact records, one `u v start end` line per
/// maximal contact, preceded by the directive header.
pub fn write_intervals<W: Write>(trace: &ContactTrace, mut w: W) -> io::Result<()> {
    header(trace, "intervals", &mut w)?;
    for c in trace.contacts() {
        writeln!(
            w,
            "{} {} {} {}",
            trace.label(c.a),
            trace.label(c.b),
            c.interval.start,
            c.interval.end
        )?;
    }
    Ok(())
}

fn header<W: Write>(trace: &ContactTrace, kind: &str, w: &mut W) -> io::Result<()> {
    write!(w, "#! streach-trace v1 kind={kind}")?;
    if trace.numeric_identity() {
        write!(w, " ids=numeric")?;
    }
    writeln!(
        w,
        " num_objects={} horizon={} origin=0 time_scale=1",
        trace.num_objects(),
        trace.horizon()
    )
}

#[cfg(test)]
mod tests {
    use super::super::{ContactTrace, IngestOptions};
    use super::*;
    use reach_core::{Contact, ObjectId, TimeInterval};

    fn sample() -> ContactTrace {
        let c = |a: u32, b: u32, s: u32, e: u32| {
            Contact::new(ObjectId(a), ObjectId(b), TimeInterval::new(s, e))
        };
        // Object 3 and ticks 8..12 are silent — the header must carry them.
        ContactTrace::from_parts(4, 12, [c(0, 1, 0, 2), c(1, 2, 4, 7)]).unwrap()
    }

    #[test]
    fn events_round_trip_exactly() {
        let trace = sample();
        let mut buf = Vec::new();
        write_events(&trace, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("#! streach-trace v1 kind=events ids=numeric"));
        let back = ContactTrace::parse(&text, &IngestOptions::default()).unwrap();
        assert_eq!(back.contacts(), trace.contacts());
        assert_eq!(back.num_objects(), 4);
        assert_eq!(back.horizon(), 12);
    }

    #[test]
    fn intervals_round_trip_exactly() {
        let trace = sample();
        let mut buf = Vec::new();
        write_intervals(&trace, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("kind=intervals"));
        // The kind directive drives the sniffing in parse().
        let back = ContactTrace::parse(&text, &IngestOptions::default()).unwrap();
        assert_eq!(back.contacts(), trace.contacts());
        assert_eq!(back.num_objects(), 4);
        assert_eq!(back.horizon(), 12);
    }
}
