//! Interval contact-record parser: `u v start end`.
//!
//! The natural serialization of the paper's §3.1 contact definition — one
//! maximal (or partial; overlaps are merged downstream) contact per line
//! with an inclusive validity interval, the format interval indexes such as
//! Brito et al.'s timed transitive closures consume. Exactly four fields
//! per data line; `end < start` is malformed. See `DATAFORMATS.md`.

use super::{parse_time_field, ContactSource, Directives, IngestError, LineCursor, RawRecord};
use std::io::BufRead;

/// Parser for interval contact records (`u v start end`, ends inclusive).
pub struct IntervalSource<R: BufRead> {
    cursor: LineCursor<R>,
}

impl<R: BufRead> IntervalSource<R> {
    /// A parser over any buffered reader.
    pub fn new(reader: R) -> Self {
        Self {
            cursor: LineCursor::new(reader),
        }
    }
}

impl<R: BufRead> ContactSource for IntervalSource<R> {
    fn next_record(&mut self) -> Option<Result<RawRecord, IngestError>> {
        let (line, mut fields) = match self.cursor.next_fields()? {
            Ok(lf) => lf,
            Err(e) => return Some(Err(e)),
        };
        if fields.len() != 4 {
            return Some(Err(IngestError::parse(
                line,
                format!("expected `u v start end`, got {} fields", fields.len()),
            )));
        }
        let start = match parse_time_field(line, "start", &fields[2]) {
            Ok(t) => t,
            Err(e) => return Some(Err(e)),
        };
        let end = match parse_time_field(line, "end", &fields[3]) {
            Ok(t) => t,
            Err(e) => return Some(Err(e)),
        };
        if end < start {
            return Some(Err(IngestError::parse(
                line,
                format!("interval [{start}, {end}] ends before it starts"),
            )));
        }
        let v = fields.swap_remove(1);
        let u = fields.swap_remove(0);
        Some(Ok(RawRecord {
            line,
            u,
            v,
            start,
            end,
        }))
    }

    fn directives(&self) -> Directives {
        self.cursor.directives()
    }

    fn name(&self) -> &'static str {
        "interval records"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_intervals() {
        let mut s = IntervalSource::new("7 9 10 25\n".as_bytes());
        let r = s.next_record().unwrap().unwrap();
        assert_eq!((r.u.as_str(), r.v.as_str()), ("7", "9"));
        assert_eq!((r.start, r.end), (10, 25));
        assert!(s.next_record().is_none());
    }

    #[test]
    fn reversed_interval_is_malformed() {
        let mut s = IntervalSource::new("1 2 9 3\n".as_bytes());
        let e = s.next_record().unwrap().unwrap_err();
        assert!(matches!(e, IngestError::Parse { line: 1, .. }), "{e}");
    }

    #[test]
    fn arity_is_exact() {
        let mut s = IntervalSource::new("1 2 3\n1 2 3 4 5\n".as_bytes());
        assert!(s.next_record().unwrap().is_err());
        assert!(s.next_record().unwrap().is_err());
    }
}
