//! Component-colocation embedding: a [`ContactTrace`] as a
//! [`TrajectoryStore`].
//!
//! ReachGrid (paper §4.1) is a *trajectory* index — it cannot be built from
//! a contact trace directly. But reachability only depends on the per-tick
//! connected components of the contact graph (snapshot symmetry +
//! transitivity, properties 5.1/5.2), so any trajectory dataset with the
//! same per-tick components answers every reachability query identically.
//! This module constructs the simplest such dataset: every object has a
//! *home point* on a grid with spacing [`EMBED_SPACING`], and at each tick
//! all members of a contact component teleport to the home point of the
//! component's smallest member. Colocated objects are within
//! [`EMBED_THRESHOLD`]; distinct components sit at distinct grid points,
//! ≥ `EMBED_SPACING` apart.
//!
//! The spatial join of the embedded store therefore yields the *clique
//! closure* of each component — different pairwise events than the trace,
//! but identical components at every tick, hence an identical reduced DAG
//! (asserted by the ingestion tests) and identical query answers from every
//! index in the workspace.

use super::ContactTrace;
use reach_core::{Coord, Environment, ObjectId, Point, UnionFind};
use reach_traj::{Trajectory, TrajectoryStore};

/// Home-point grid spacing of the embedding, in metres.
pub const EMBED_SPACING: Coord = 8.0;

/// Contact threshold `d_T` to use with an embedded store (any value below
/// [`EMBED_SPACING`] and above 0 works; this is the documented default).
pub const EMBED_THRESHOLD: Coord = 1.0;

/// Embeds `trace` into a synthetic trajectory store whose contact network at
/// threshold [`EMBED_THRESHOLD`] has exactly the trace's per-tick connected
/// components (see the module docs for why that preserves reachability).
pub fn embed(trace: &ContactTrace) -> TrajectoryStore {
    let n = trace.num_objects();
    let horizon = trace.horizon();
    let cols = (n as f64).sqrt().ceil().max(1.0) as usize;
    let home = |o: usize| -> Point {
        Point::new(
            ((o % cols) as Coord + 0.5) * EMBED_SPACING,
            ((o / cols) as Coord + 0.5) * EMBED_SPACING,
        )
    };
    let env = Environment::square(cols as Coord * EMBED_SPACING);
    let mut positions: Vec<Vec<Point>> = (0..n).map(|o| vec![home(o); horizon as usize]).collect();

    // Interval sweep over the contacts (they are sorted by start), with
    // per-tick components via union-find — the same pass the DN builder
    // makes.
    let mut uf = UnionFind::new(n);
    let mut next = 0usize;
    let mut active: Vec<usize> = Vec::new();
    let contacts = trace.contacts();
    let mut touched: Vec<u32> = Vec::new();
    for t in 0..horizon {
        while next < contacts.len() && contacts[next].interval.start == t {
            active.push(next);
            next += 1;
        }
        if active.is_empty() {
            continue;
        }
        uf.reset();
        touched.clear();
        active.retain(|&i| {
            let c = &contacts[i];
            if c.interval.end < t {
                return false;
            }
            uf.union(c.a.0, c.b.0);
            touched.push(c.a.0);
            touched.push(c.b.0);
            true
        });
        // Smallest member of each component anchors the colocation point.
        touched.sort_unstable();
        touched.dedup();
        let mut keyed: Vec<(u32, u32)> = touched.iter().map(|&o| (uf.find(o), o)).collect();
        keyed.sort_unstable();
        let mut i = 0;
        while i < keyed.len() {
            let root = keyed[i].0;
            let anchor = home(keyed[i].1 as usize); // first = smallest member
            while i < keyed.len() && keyed[i].0 == root {
                positions[keyed[i].1 as usize][t as usize] = anchor;
                i += 1;
            }
        }
    }

    let trajs = positions
        .into_iter()
        .enumerate()
        .map(|(o, ps)| Trajectory::new(ObjectId(o as u32), 0, ps))
        .collect();
    TrajectoryStore::new(env, trajs).expect("embedding produces a dense, uniform-horizon store")
}

#[cfg(test)]
mod tests {
    use super::super::{ContactTrace, IngestOptions};
    use super::*;
    use crate::dag::DnGraph;

    fn trace() -> ContactTrace {
        // Figure 1 of the paper plus a silent object 4.
        let text = "#! streach-trace kind=events ids=numeric num_objects=5 horizon=4 origin=0\n\
                    0 1 0\n1 3 1\n2 3 1\n0 1 2\n2 3 2\n0 1 3\n";
        ContactTrace::parse(text, &IngestOptions::default()).unwrap()
    }

    #[test]
    fn embedded_store_has_trace_shape() {
        let t = trace();
        let store = embed(&t);
        assert_eq!(store.num_objects(), 5);
        assert_eq!(store.horizon(), 4);
    }

    #[test]
    fn components_colocate_and_strangers_stay_apart() {
        let t = trace();
        let store = embed(&t);
        // t=1: component {1,2,3} colocated, 0 and 4 elsewhere.
        let snap = store.snapshot(1).unwrap();
        assert_eq!(snap[1], snap[2]);
        assert_eq!(snap[2], snap[3]);
        let d = |a: Point, b: Point| ((a.x - b.x).powi(2) + (a.y - b.y).powi(2)).sqrt();
        assert!(d(snap[0], snap[1]) >= EMBED_SPACING - 1e-3);
        assert!(d(snap[4], snap[1]) >= EMBED_SPACING - 1e-3);
    }

    #[test]
    fn embedded_dn_equals_trace_dn() {
        let t = trace();
        let direct = t.build_dn();
        let via_store = DnGraph::build(&embed(&t), EMBED_THRESHOLD);
        via_store.validate().expect("embedded DN valid");
        assert_eq!(direct.nodes(), via_store.nodes());
        for v in 0..direct.num_nodes() as u32 {
            assert_eq!(direct.fwd(v), via_store.fwd(v));
        }
    }

    #[test]
    fn empty_trace_embeds_to_empty_store() {
        let t = ContactTrace::parse("", &IngestOptions::default()).unwrap();
        let store = embed(&t);
        assert_eq!(store.num_objects(), 0);
        assert_eq!(store.horizon(), 0);
    }
}
