//! Contact-trace ingestion: loaders for *real* contact datasets.
//!
//! The paper evaluates on contact networks extracted from trajectories, but
//! the public contact datasets used by follow-up work (Ali et al., *An
//! Efficient Index for Contact Tracing Query*; Brito et al., *Timed
//! Transitive Closures on Disk*) arrive as **timestamped edge lists** — there
//! are no trajectories to join. This module closes that gap: it parses the
//! two dominant text formats into a normalized [`ContactTrace`], from which
//! the reduced DAG is built *event-directly* via [`DnGraph::from_contacts`],
//! bypassing `TrajectoryStore` and the spatial join of §4 entirely.
//!
//! The pieces, in pipeline order:
//!
//! * [`ContactSource`] — anything that yields raw contact records
//!   ([`RawRecord`]) plus the [`Directives`] it saw;
//! * [`EdgeListSource`] — whitespace/CSV temporal edge lists
//!   `u v t [duration]` (SNAP style) or `t u v` (SocioPatterns style);
//! * [`IntervalSource`] — interval contact records `u v start end`;
//! * [`ContactTrace::load`] — normalization: id mapping, time rebasing and
//!   scaling, merging into maximal [`Contact`]s, universe/horizon
//!   resolution, with [`ErrorMode::Strict`] (first malformed line aborts
//!   with its line number) or [`ErrorMode::Lossy`] (malformed lines are
//!   skipped and counted) semantics;
//! * [`write_events`] / [`write_intervals`] — the synthetic-trace writers
//!   that make round-trip testing (and CI without network access) possible;
//! * [`embed`] — a component-colocation embedding of a trace into a
//!   [`TrajectoryStore`](reach_traj::TrajectoryStore), so the
//!   trajectory-based index (ReachGrid, §4.1) can answer queries over traces
//!   too.
//!
//! The on-disk format contract — field order, units, comment and directive
//! rules, and how records map to [`Contact`]s — lives in `DATAFORMATS.md` at
//! the repository root; its worked examples are parsed verbatim as test
//! fixtures.

mod edge_list;
mod embed_impl;
mod intervals;
mod writer;

pub use edge_list::EdgeListSource;
pub use embed_impl::{embed, EMBED_SPACING, EMBED_THRESHOLD};
pub use intervals::IntervalSource;
pub use writer::{write_events, write_intervals};

use crate::dag::DnGraph;
use reach_core::{Contact, ObjectId, Time, TimeInterval};
use std::collections::HashMap;
use std::fmt;
use std::io::BufRead;
use std::path::Path;

/// Errors surfaced while ingesting a contact trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IngestError {
    /// An operating-system IO failure while reading the source.
    Io(String),
    /// One malformed line, with its 1-based line number.
    Parse {
        /// 1-based line number in the source.
        line: u64,
        /// What was wrong with the line.
        msg: String,
    },
    /// The trace as a whole contradicts itself or its declared metadata
    /// (e.g. an id beyond the declared universe, an event past the declared
    /// horizon).
    Inconsistent(String),
}

impl IngestError {
    /// A per-line parse error (1-based line number). Public so custom
    /// [`ContactSource`] implementations — and the live append path — can
    /// report record problems in the standard shape.
    pub fn parse(line: u64, msg: impl Into<String>) -> Self {
        IngestError::Parse {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(msg) => write!(f, "trace IO failure: {msg}"),
            IngestError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            IngestError::Inconsistent(msg) => write!(f, "inconsistent trace: {msg}"),
        }
    }
}

impl std::error::Error for IngestError {}

/// What to do with malformed lines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ErrorMode {
    /// Abort on the first malformed line, reporting its line number.
    #[default]
    Strict,
    /// Skip malformed lines (and records that fail normalization), counting
    /// them in [`ContactTrace::skipped`].
    Lossy,
}

/// The two trace layouts this module parses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// Temporal edge list: one (possibly instantaneous) contact per line,
    /// `u v t [duration]`.
    Events,
    /// Interval contact records: `u v start end` (both ends inclusive).
    Intervals,
}

/// Metadata declared by `#!` directive lines inside a trace (all optional).
///
/// Directives make bare edge lists self-describing: a trace that names its
/// universe and horizon round-trips to the *exact* same DN, including
/// objects that never appear in any contact and silent ticks after the last
/// event. See `DATAFORMATS.md` for the syntax.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Directives {
    /// `kind=events|intervals` — layout of the data lines.
    pub kind: Option<TraceKind>,
    /// `cols=uvt|tuv` — edge-list column order (`tuv` = SocioPatterns
    /// time-first).
    pub time_first: Option<bool>,
    /// `ids=numeric|dense` — id-mapping policy (see [`ContactTrace::load`]).
    pub ids_numeric: Option<bool>,
    /// `num_objects=N` — universe size `|O|`.
    pub num_objects: Option<usize>,
    /// `horizon=H` — horizon in **ticks** (after time scaling).
    pub horizon: Option<Time>,
    /// `origin=T` — raw timestamp mapped to tick 0.
    pub origin: Option<u64>,
    /// `time_scale=S` — raw time units per tick.
    pub time_scale: Option<u64>,
}

impl Directives {
    /// Parses the payload of one `#!` line (everything after `#!`),
    /// merging recognized `key=value` tokens into `self`. Unknown keys and
    /// bare tokens (e.g. the `streach-trace v1` banner) are ignored for
    /// forward compatibility; recognized keys with unparsable values are
    /// errors.
    pub fn apply(&mut self, line: u64, payload: &str) -> Result<(), IngestError> {
        for token in payload.split_whitespace() {
            let Some((key, value)) = token.split_once('=') else {
                continue;
            };
            let bad = |what: &str| {
                IngestError::parse(line, format!("directive {key}={value}: expected {what}"))
            };
            match key {
                "kind" => {
                    self.kind = Some(match value {
                        "events" => TraceKind::Events,
                        "intervals" => TraceKind::Intervals,
                        _ => return Err(bad("events|intervals")),
                    })
                }
                "cols" => {
                    self.time_first = Some(match value {
                        "uvt" => false,
                        "tuv" => true,
                        _ => return Err(bad("uvt|tuv")),
                    })
                }
                "ids" => {
                    self.ids_numeric = Some(match value {
                        "numeric" => true,
                        "dense" => false,
                        _ => return Err(bad("numeric|dense")),
                    })
                }
                "num_objects" => {
                    self.num_objects = Some(value.parse().map_err(|_| bad("a count"))?)
                }
                "horizon" => self.horizon = Some(value.parse().map_err(|_| bad("ticks"))?),
                "origin" => self.origin = Some(value.parse().map_err(|_| bad("a timestamp"))?),
                "time_scale" => {
                    self.time_scale = Some(value.parse().map_err(|_| bad("time units"))?)
                }
                _ => {} // unknown directive keys are reserved, not errors
            }
        }
        Ok(())
    }
}

/// One raw contact record in *source* units: ids as textual labels, times as
/// raw (unscaled, unrebased) timestamps, both ends inclusive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawRecord {
    /// 1-based source line the record came from (for error reporting).
    pub line: u64,
    /// First endpoint label, verbatim.
    pub u: String,
    /// Second endpoint label, verbatim.
    pub v: String,
    /// Raw start timestamp.
    pub start: u64,
    /// Raw end timestamp (inclusive; equals `start` for instantaneous
    /// events).
    pub end: u64,
}

/// A producer of raw contact records — the parser half of the ingestion
/// pipeline. Implemented by [`EdgeListSource`] and [`IntervalSource`];
/// implement it yourself to ingest from anything else (a database cursor, a
/// binary log, a network stream).
///
/// Per-record errors are reported inline so [`ContactTrace::load`] can apply
/// [`ErrorMode`] semantics: `Strict` aborts on the first `Err`, `Lossy`
/// counts and skips it.
pub trait ContactSource {
    /// The next record, `None` at end of input.
    fn next_record(&mut self) -> Option<Result<RawRecord, IngestError>>;

    /// The `#!` directives seen so far. Called after the source is drained,
    /// so directives may appear anywhere in the file.
    fn directives(&self) -> Directives;

    /// Short human name for error messages.
    fn name(&self) -> &'static str {
        "contact source"
    }
}

/// Knobs for [`ContactTrace::load`]. Every `Option` field overrides the
/// corresponding trace directive when set; unset fields fall back to the
/// directive, then to the documented default.
#[derive(Clone, Debug, Default)]
pub struct IngestOptions {
    /// Malformed-line handling (default: [`ErrorMode::Strict`]).
    pub mode: ErrorMode,
    /// Force the trace layout (needed by [`ContactTrace::load_path`] when
    /// the file has no `kind=` directive and is not an edge list).
    pub kind: Option<TraceKind>,
    /// Force the edge-list column order: `true` = SocioPatterns `t i j`
    /// (directive `cols=tuv`), `false` = `u v t [duration]` (default).
    pub time_first: Option<bool>,
    /// Raw time units per tick (directive `time_scale`, default 1).
    pub time_scale: Option<u64>,
    /// Raw timestamp mapped to tick 0 (directive `origin`, default: the
    /// smallest timestamp in the trace).
    pub origin: Option<u64>,
    /// Universe size `|O|` (directive `num_objects`, default: observed).
    pub num_objects: Option<usize>,
    /// Horizon in ticks (directive `horizon`, default: last event tick + 1).
    pub horizon: Option<Time>,
    /// Id policy: `true` = labels are the dense ids themselves, `false` =
    /// labels are mapped to dense ids in sorted order (directive `ids`,
    /// default `false`).
    pub numeric_ids: Option<bool>,
}

impl IngestOptions {
    /// Strict options with every override unset — the right default for
    /// curated files.
    pub fn strict() -> Self {
        Self::default()
    }

    /// Lossy options: malformed lines are skipped and counted.
    pub fn lossy() -> Self {
        Self {
            mode: ErrorMode::Lossy,
            ..Self::default()
        }
    }

    /// Forces the trace layout.
    pub fn with_kind(mut self, kind: TraceKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Selects the SocioPatterns `t i j` edge-list column order (equivalent
    /// to a `cols=tuv` directive in the file).
    pub fn sociopatterns(mut self) -> Self {
        self.time_first = Some(true);
        self
    }

    /// Sets raw time units per tick.
    pub fn with_time_scale(mut self, scale: u64) -> Self {
        self.time_scale = Some(scale);
        self
    }

    /// Sets the raw timestamp mapped to tick 0.
    pub fn with_origin(mut self, origin: u64) -> Self {
        self.origin = Some(origin);
        self
    }

    /// Declares the universe size.
    pub fn with_num_objects(mut self, n: usize) -> Self {
        self.num_objects = Some(n);
        self
    }

    /// Declares the horizon in ticks.
    pub fn with_horizon(mut self, horizon: Time) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Selects the id-mapping policy.
    pub fn with_numeric_ids(mut self, numeric: bool) -> Self {
        self.numeric_ids = Some(numeric);
        self
    }

    /// Whether these options pin every normalization parameter — origin,
    /// time scale (nonzero), and id policy — so no late `#!` directive can
    /// change how a record is interpreted.
    ///
    /// When pinned, [`ContactTrace::load`] validates and converts each
    /// record the moment it arrives and coalesces adjacent same-pair
    /// records through a bounded merge window, instead of buffering the
    /// whole trace first; the result is identical either way (asserted by
    /// the ingestion tests), but peak memory drops from `O(records)` to
    /// `O(contacts + window)` for time-sorted traces.
    pub fn is_pinned(&self) -> bool {
        self.origin.is_some()
            && self.time_scale.is_some_and(|s| s != 0)
            && self.numeric_ids.is_some()
    }
}

/// Pairs a bounded merge window can hold open before flushing the oldest.
const MERGE_WINDOW_PAIRS: usize = 1024;

/// First-seen-order string interner: deferred normalization stores two
/// `u32`s per record instead of two heap strings.
#[derive(Default)]
struct Interner {
    map: HashMap<String, u32>,
    labels: Vec<String>,
}

impl Interner {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.map.get(s) {
            return i;
        }
        let i = self.labels.len() as u32;
        self.map.insert(s.to_string(), i);
        self.labels.push(s.to_string());
        i
    }
}

/// One compact pending record (deferred normalization): interned labels,
/// raw times, source line.
struct Pending {
    line: u64,
    a: u32,
    b: u32,
    start: u64,
    end: u64,
}

/// The bounded merge window of pinned-options loading: per-pair open
/// intervals, coalescing overlapping/abutting tick intervals on arrival,
/// flushing the oldest pair when `cap` pairs are open. Purely a memory
/// optimization — [`merge_tuples`] re-merges at the end, so splitting a
/// pair across flushes loses nothing.
struct MergeWindow {
    cap: usize,
    open: HashMap<(u32, u32), TimeInterval>,
    order: std::collections::VecDeque<(u32, u32)>,
}

impl MergeWindow {
    fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            open: HashMap::new(),
            order: std::collections::VecDeque::new(),
        }
    }

    fn push(
        &mut self,
        pair: (u32, u32),
        iv: TimeInterval,
        out: &mut Vec<(u32, u32, TimeInterval)>,
    ) {
        if let Some(cur) = self.open.get_mut(&pair) {
            let overlaps =
                iv.start <= cur.end.saturating_add(1) && cur.start <= iv.end.saturating_add(1);
            if overlaps {
                cur.start = cur.start.min(iv.start);
                cur.end = cur.end.max(iv.end);
            } else {
                out.push((pair.0, pair.1, *cur));
                *cur = iv; // keeps its slot in `order`
            }
            return;
        }
        if self.open.len() == self.cap {
            let oldest = self.order.pop_front().expect("cap ≥ 1 entries open");
            let iv = self.open.remove(&oldest).expect("ordered pair is open");
            out.push((oldest.0, oldest.1, iv));
        }
        self.open.insert(pair, iv);
        self.order.push_back(pair);
    }

    fn flush(mut self, out: &mut Vec<(u32, u32, TimeInterval)>) {
        while let Some(pair) = self.order.pop_front() {
            let iv = self.open.remove(&pair).expect("ordered pair is open");
            out.push((pair.0, pair.1, iv));
        }
    }
}

/// A normalized contact dataset: dense object ids, tick times, maximal
/// per-pair contact intervals sorted by `(start, a, b)` — exactly the
/// invariants [`extract_contacts`](crate::extract::extract_contacts)
/// guarantees for trajectory datasets, so everything downstream of the
/// contact network treats loaded traces and extracted networks identically.
#[derive(Clone, PartialEq)]
pub struct ContactTrace {
    contacts: Vec<Contact>,
    labels: Vec<String>,
    num_objects: usize,
    horizon: Time,
    records: u64,
    skipped: u64,
}

impl fmt::Debug for ContactTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ContactTrace")
            .field("num_objects", &self.num_objects)
            .field("horizon", &self.horizon)
            .field("contacts", &self.contacts.len())
            .field("records", &self.records)
            .field("skipped", &self.skipped)
            .finish()
    }
}

impl ContactTrace {
    /// Drains `source` in a single pass and normalizes its records into a
    /// trace.
    ///
    /// Normalization steps, in order:
    ///
    /// 1. **Drain** — per-record parse errors abort ([`ErrorMode::Strict`])
    ///    or are counted and skipped ([`ErrorMode::Lossy`]). Records are
    ///    never materialized as [`RawRecord`]s: labels go through an
    ///    interner, so a pending record is two `u32`s and two raw
    ///    timestamps. With pinned options ([`IngestOptions::is_pinned`])
    ///    even that buffer disappears: records validate, convert, and
    ///    coalesce through a bounded merge window as they arrive.
    /// 2. **Time mapping** — `tick = (raw − origin) / time_scale`; records
    ///    before the origin are malformed.
    /// 3. **Id mapping** — numeric policy: a label *is* its dense id;
    ///    dense policy: distinct labels are sorted (numerically when every
    ///    label is a number, else lexicographically) and numbered `0..`.
    ///    Self-contacts are malformed.
    /// 4. **Merge** — overlapping or abutting records of one pair fuse into
    ///    maximal [`Contact`]s (the paper's §3.1 contact definition; two
    ///    meetings separated by a gap stay distinct).
    /// 5. **Universe/horizon resolution** — declared values (options, then
    ///    directives) must cover the observed data, and extend it with
    ///    silent objects/ticks when larger.
    pub fn load<S: ContactSource>(source: S, options: &IngestOptions) -> Result<Self, IngestError> {
        if options.is_pinned() {
            Self::load_pinned(source, options)
        } else {
            Self::load_deferred(source, options)
        }
    }

    /// Deferred path: directives may appear anywhere, so records that parse
    /// are compacted (interned labels + raw times) and interpreted only
    /// after the source is drained.
    fn load_deferred<S: ContactSource>(
        mut source: S,
        options: &IngestOptions,
    ) -> Result<Self, IngestError> {
        let mut interner = Interner::default();
        let mut pending: Vec<Pending> = Vec::new();
        let mut skipped = 0u64;
        while let Some(r) = source.next_record() {
            match r {
                Ok(rec) => pending.push(Pending {
                    line: rec.line,
                    a: interner.intern(&rec.u),
                    b: interner.intern(&rec.v),
                    start: rec.start,
                    end: rec.end,
                }),
                Err(e) => match options.mode {
                    ErrorMode::Strict => return Err(e),
                    ErrorMode::Lossy => skipped += 1,
                },
            }
        }
        let dir = source.directives();
        Self::finalize_deferred(pending, interner, skipped, &dir, options)
    }

    /// Pinned path: every normalization parameter is fixed by the options,
    /// so each record is validated and tick-converted on arrival and folded
    /// through the bounded merge window — nothing but open window pairs and
    /// finished tuples stays in memory.
    fn load_pinned<S: ContactSource>(
        mut source: S,
        options: &IngestOptions,
    ) -> Result<Self, IngestError> {
        let mode = options.mode;
        let origin = options.origin.expect("pinned options carry an origin");
        let scale = options.time_scale.expect("pinned options carry a scale");
        let numeric = options
            .numeric_ids
            .expect("pinned options carry an id policy");
        let mut interner = Interner::default();
        let mut used: Vec<bool> = Vec::new();
        let mut window = MergeWindow::new(MERGE_WINDOW_PAIRS);
        let mut tuples: Vec<(u32, u32, TimeInterval)> = Vec::new();
        let mut records = 0u64;
        let mut skipped = 0u64;
        let mut observed_objects = 0usize;
        let mut strict_err: Option<IngestError> = None;
        let mut skip = |e: IngestError, skipped: &mut u64| -> bool {
            match mode {
                ErrorMode::Strict => {
                    strict_err = Some(e);
                    false
                }
                ErrorMode::Lossy => {
                    *skipped += 1;
                    true
                }
            }
        };
        while let Some(r) = source.next_record() {
            let rec = match r {
                Ok(rec) => rec,
                Err(e) => {
                    if skip(e, &mut skipped) {
                        continue;
                    }
                    break;
                }
            };
            let pair = if numeric {
                let id_of = |label: &str| -> Result<u32, IngestError> {
                    label.parse::<u32>().map_err(|_| {
                        IngestError::parse(
                            rec.line,
                            format!("id {label:?} is not numeric (trace declares ids=numeric)"),
                        )
                    })
                };
                let (a, b) = match (id_of(&rec.u), id_of(&rec.v)) {
                    (Ok(a), Ok(b)) => (a, b),
                    (Err(e), _) | (_, Err(e)) => {
                        if skip(e, &mut skipped) {
                            continue;
                        }
                        break;
                    }
                };
                if a == b {
                    if skip(
                        IngestError::parse(rec.line, format!("self-contact of id {a}")),
                        &mut skipped,
                    ) {
                        continue;
                    }
                    break;
                }
                (a.min(b), a.max(b))
            } else {
                if rec.u == rec.v {
                    if skip(
                        IngestError::parse(rec.line, format!("self-contact of {:?}", rec.u)),
                        &mut skipped,
                    ) {
                        continue;
                    }
                    break;
                }
                let a = interner.intern(&rec.u);
                let b = interner.intern(&rec.v);
                used.resize(interner.labels.len(), false);
                (a.min(b), a.max(b))
            };
            if rec.start < origin {
                if skip(
                    IngestError::parse(
                        rec.line,
                        format!("timestamp {} precedes the origin {origin}", rec.start),
                    ),
                    &mut skipped,
                ) {
                    continue;
                }
                break;
            }
            let interval = match (
                time_to_tick(rec.start, origin, scale, rec.line),
                time_to_tick(rec.end, origin, scale, rec.line),
            ) {
                (Ok(start), Ok(end)) => TimeInterval::new(start, end),
                (Err(e), _) | (_, Err(e)) => {
                    if skip(e, &mut skipped) {
                        continue;
                    }
                    break;
                }
            };
            records += 1;
            // Only *surviving* records shape the universe (like the
            // deferred path): a record skipped by a later check must not
            // have inflated the observed id range.
            if numeric {
                observed_objects = observed_objects.max(pair.1 as usize + 1);
            } else {
                used[pair.0 as usize] = true;
                used[pair.1 as usize] = true;
            }
            window.push(pair, interval, &mut tuples);
        }
        if let Some(e) = strict_err {
            return Err(e);
        }
        window.flush(&mut tuples);
        let dir = source.directives();
        let labels = if numeric {
            Vec::new()
        } else {
            let (sorted, final_of) = dense_rank(&interner, &used);
            for (a, b, _) in &mut tuples {
                let (fa, fb) = (final_of[*a as usize], final_of[*b as usize]);
                (*a, *b) = (fa.min(fb), fa.max(fb));
            }
            observed_objects = sorted.len();
            sorted
        };
        Self::assemble(
            numeric,
            labels,
            observed_objects,
            tuples,
            records,
            skipped,
            &dir,
            options,
        )
    }

    fn finalize_deferred(
        pending: Vec<Pending>,
        interner: Interner,
        mut skipped: u64,
        dir: &Directives,
        options: &IngestOptions,
    ) -> Result<Self, IngestError> {
        let mode = options.mode;
        let scale = options.time_scale.or(dir.time_scale).unwrap_or(1);
        if scale == 0 {
            return Err(IngestError::Inconsistent("time_scale must be ≥ 1".into()));
        }
        let origin = options
            .origin
            .or(dir.origin)
            .or_else(|| pending.iter().map(|r| r.start).min())
            .unwrap_or(0);
        let numeric = options.numeric_ids.or(dir.ids_numeric).unwrap_or(false);

        let skip_or = |e: IngestError, skipped: &mut u64| -> Result<(), IngestError> {
            match mode {
                ErrorMode::Strict => Err(e),
                ErrorMode::Lossy => {
                    *skipped += 1;
                    Ok(())
                }
            }
        };

        // Per-record validation in source terms, in arrival order (so strict
        // mode reports the first malformed line). Only surviving records
        // contribute anything downstream: in dense mode a record skipped
        // here must not add its labels to the universe. (Dense ids map
        // distinct labels to distinct ids, so a self-contact is exactly
        // textual label equality — interned-id equality; numeric mode must
        // parse first — "01" and "1" are the same object.)
        let parsed: Vec<Option<u32>> = if numeric {
            interner
                .labels
                .iter()
                .map(|l| l.parse::<u32>().ok())
                .collect()
        } else {
            Vec::new()
        };
        let mut used = vec![false; interner.labels.len()];
        let mut tuples: Vec<(u32, u32, TimeInterval)> = Vec::with_capacity(pending.len());
        let mut observed_objects = 0usize;
        for r in &pending {
            let pair = if numeric {
                let id_of = |i: u32| -> Result<u32, IngestError> {
                    parsed[i as usize].ok_or_else(|| {
                        IngestError::parse(
                            r.line,
                            format!(
                                "id {:?} is not numeric (trace declares ids=numeric)",
                                interner.labels[i as usize]
                            ),
                        )
                    })
                };
                let (a, b) = match (id_of(r.a), id_of(r.b)) {
                    (Ok(a), Ok(b)) => (a, b),
                    (Err(e), _) | (_, Err(e)) => {
                        skip_or(e, &mut skipped)?;
                        continue;
                    }
                };
                if a == b {
                    skip_or(
                        IngestError::parse(r.line, format!("self-contact of id {a}")),
                        &mut skipped,
                    )?;
                    continue;
                }
                Some((a, b))
            } else if r.a == r.b {
                skip_or(
                    IngestError::parse(
                        r.line,
                        format!("self-contact of {:?}", interner.labels[r.a as usize]),
                    ),
                    &mut skipped,
                )?;
                continue;
            } else {
                None
            };
            if r.start < origin {
                skip_or(
                    IngestError::parse(
                        r.line,
                        format!("timestamp {} precedes the origin {origin}", r.start),
                    ),
                    &mut skipped,
                )?;
                continue;
            }
            let interval = match (
                time_to_tick(r.start, origin, scale, r.line),
                time_to_tick(r.end, origin, scale, r.line),
            ) {
                (Ok(start), Ok(end)) => TimeInterval::new(start, end),
                (Err(e), _) | (_, Err(e)) => {
                    skip_or(e, &mut skipped)?;
                    continue;
                }
            };
            match pair {
                Some((a, b)) => {
                    observed_objects = observed_objects.max(a.max(b) as usize + 1);
                    tuples.push((a.min(b), a.max(b), interval));
                }
                None => {
                    used[r.a as usize] = true;
                    used[r.b as usize] = true;
                    tuples.push((r.a, r.b, interval)); // interned ids; remapped below
                }
            }
        }
        let records = tuples.len() as u64;

        // Id mapping over the surviving records only.
        let labels = if numeric {
            Vec::new()
        } else {
            let (sorted, final_of) = dense_rank(&interner, &used);
            for (a, b, _) in &mut tuples {
                let (fa, fb) = (final_of[*a as usize], final_of[*b as usize]);
                (*a, *b) = (fa.min(fb), fa.max(fb));
            }
            observed_objects = sorted.len();
            sorted
        };
        Self::assemble(
            numeric,
            labels,
            observed_objects,
            tuples,
            records,
            skipped,
            dir,
            options,
        )
    }

    /// Universe/horizon resolution shared by both loading paths: `tuples`
    /// carry final dense ids, `labels` the sorted survivor labels (dense
    /// mode) or nothing (numeric mode).
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        numeric: bool,
        mut labels: Vec<String>,
        observed_objects: usize,
        tuples: Vec<(u32, u32, TimeInterval)>,
        records: u64,
        skipped: u64,
        dir: &Directives,
        options: &IngestOptions,
    ) -> Result<Self, IngestError> {
        let num_objects = options
            .num_objects
            .or(dir.num_objects)
            .unwrap_or(observed_objects);
        if num_objects < observed_objects {
            return Err(IngestError::Inconsistent(format!(
                "declared num_objects={num_objects} but the trace references {observed_objects} objects"
            )));
        }
        if numeric {
            labels = (0..num_objects).map(|i| i.to_string()).collect();
        } else {
            // Silent extra objects get reserved placeholder labels.
            labels.extend((labels.len()..num_objects).map(|i| format!("#{i}")));
        }

        // Horizon resolution.
        let observed_horizon = tuples
            .iter()
            .map(|&(_, _, iv)| iv.end + 1)
            .max()
            .unwrap_or(0);
        let horizon = options.horizon.or(dir.horizon).unwrap_or(observed_horizon);
        if horizon < observed_horizon {
            return Err(IngestError::Inconsistent(format!(
                "declared horizon={horizon} but the trace has events up to tick {}",
                observed_horizon - 1
            )));
        }

        Ok(Self {
            contacts: merge_tuples(tuples),
            labels,
            num_objects,
            horizon,
            records,
            skipped,
        })
    }

    /// Loads a trace from a file, sniffing the layout: an explicit
    /// [`IngestOptions::kind`] wins, then a `kind=` directive anywhere in
    /// the file, then the edge-list default (interval files without a
    /// directive need the explicit option).
    pub fn load_path(path: impl AsRef<Path>, options: &IngestOptions) -> Result<Self, IngestError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| IngestError::Io(format!("read {}: {e}", path.display())))?;
        Self::parse(&text, options)
    }

    /// [`ContactTrace::load_path`] over an in-memory string (doctests,
    /// fixtures, tests).
    pub fn parse(text: &str, options: &IngestOptions) -> Result<Self, IngestError> {
        let sniffed = sniff_directives(text);
        let kind = options.kind.or(sniffed.kind).unwrap_or(TraceKind::Events);
        let time_first = options.time_first.or(sniffed.time_first).unwrap_or(false);
        match (kind, time_first) {
            (TraceKind::Events, false) => Self::load(EdgeListSource::new(text.as_bytes()), options),
            (TraceKind::Events, true) => {
                Self::load(EdgeListSource::sociopatterns(text.as_bytes()), options)
            }
            (TraceKind::Intervals, _) => Self::load(IntervalSource::new(text.as_bytes()), options),
        }
    }

    /// Builds a trace directly from in-memory contacts over a known universe
    /// — the bridge from the synthetic generators to the trace writers.
    /// Labels are the decimal ids. Overlapping/abutting contacts of one pair
    /// are merged; ids and intervals must fit the declared universe.
    pub fn from_parts(
        num_objects: usize,
        horizon: Time,
        contacts: impl IntoIterator<Item = Contact>,
    ) -> Result<Self, IngestError> {
        let mut tuples: Vec<(u32, u32, TimeInterval)> = Vec::new();
        for c in contacts {
            if c.a.index() >= num_objects || c.b.index() >= num_objects {
                return Err(IngestError::Inconsistent(format!(
                    "contact {c:?} references an object outside the universe of {num_objects}"
                )));
            }
            if c.interval.end >= horizon {
                return Err(IngestError::Inconsistent(format!(
                    "contact {c:?} extends beyond the horizon {horizon}"
                )));
            }
            tuples.push((c.a.0, c.b.0, c.interval));
        }
        let contacts = merge_tuples(tuples);
        let records = contacts.len() as u64;
        Ok(Self {
            contacts,
            labels: (0..num_objects).map(|i| i.to_string()).collect(),
            num_objects,
            horizon,
            records,
            skipped: 0,
        })
    }

    /// The maximal contacts, sorted by `(interval.start, a, b)`.
    pub fn contacts(&self) -> &[Contact] {
        &self.contacts
    }

    /// Universe size `|O|` (including objects that never appear in a
    /// contact).
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// Horizon `|T|` in ticks; every contact lies inside `[0, horizon)`.
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// Raw contact records accepted during loading (before merging).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Lines/records skipped in [`ErrorMode::Lossy`] (always 0 in strict
    /// mode).
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Source label of a dense id.
    ///
    /// # Panics
    ///
    /// Panics if `o` is outside the universe.
    pub fn label(&self, o: ObjectId) -> &str {
        &self.labels[o.index()]
    }

    /// Dense id of a source label (linear scan — resolve ids up front, not
    /// per query).
    pub fn resolve(&self, label: &str) -> Option<ObjectId> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|i| ObjectId(i as u32))
    }

    /// Whether every label is the decimal rendering of its id — the
    /// condition under which [`write_events`]/[`write_intervals`] emit an
    /// `ids=numeric` directive and the trace round-trips exactly.
    pub fn numeric_identity(&self) -> bool {
        self.labels
            .iter()
            .enumerate()
            .all(|(i, l)| l.as_str() == i.to_string())
    }

    /// Builds the reduced contact-network DAG (paper §5.1.2) directly from
    /// the trace — the event-direct path, no trajectories involved.
    pub fn build_dn(&self) -> DnGraph {
        DnGraph::from_contacts(self.num_objects, self.horizon, &self.contacts)
    }

    /// Embeds the trace into a synthetic [`TrajectoryStore`]
    /// (see [`embed`]), enabling the trajectory-based ReachGrid index over
    /// traces.
    ///
    /// [`TrajectoryStore`]: reach_traj::TrajectoryStore
    pub fn to_store(&self) -> reach_traj::TrajectoryStore {
        embed(self)
    }
}

fn time_to_tick(raw: u64, origin: u64, scale: u64, line: u64) -> Result<Time, IngestError> {
    let tick = (raw - origin) / scale;
    Time::try_from(tick)
        .map_err(|_| IngestError::parse(line, format!("timestamp {raw} overflows the tick range")))
}

/// Dense-id ranking over the labels actually used by surviving records:
/// returns the sorted label list (numerically when every used label parses
/// as a number, lexicographically otherwise) and the interned-id → final-id
/// permutation.
fn dense_rank(interner: &Interner, used: &[bool]) -> (Vec<String>, Vec<u32>) {
    let mut distinct: Vec<&str> = interner
        .labels
        .iter()
        .zip(used)
        .filter(|&(_, &u)| u)
        .map(|(l, _)| l.as_str())
        .collect();
    distinct.sort_unstable();
    if distinct.iter().all(|l| l.parse::<u64>().is_ok()) {
        distinct.sort_unstable_by_key(|l| l.parse::<u64>().expect("checked numeric"));
    }
    let mut final_of = vec![u32::MAX; interner.labels.len()];
    for (rank, &l) in distinct.iter().enumerate() {
        final_of[interner.map[l] as usize] = rank as u32;
    }
    (distinct.iter().map(|l| l.to_string()).collect(), final_of)
}

/// Merges per-pair overlapping/abutting intervals into maximal contacts and
/// sorts them the way `extract_contacts` does.
fn merge_tuples(mut tuples: Vec<(u32, u32, TimeInterval)>) -> Vec<Contact> {
    tuples.sort_unstable_by_key(|&(a, b, iv)| (a, b, iv.start, iv.end));
    let mut out: Vec<Contact> = Vec::with_capacity(tuples.len());
    let mut open: Option<(u32, u32, TimeInterval)> = None;
    for (a, b, iv) in tuples {
        match open {
            Some((oa, ob, mut oiv))
                if oa == a && ob == b && iv.start <= oiv.end.saturating_add(1) =>
            {
                oiv.end = oiv.end.max(iv.end);
                open = Some((oa, ob, oiv));
            }
            Some((oa, ob, oiv)) => {
                out.push(Contact::new(ObjectId(oa), ObjectId(ob), oiv));
                open = Some((a, b, iv));
            }
            None => open = Some((a, b, iv)),
        }
    }
    if let Some((a, b, iv)) = open {
        out.push(Contact::new(ObjectId(a), ObjectId(b), iv));
    }
    out.sort_unstable_by_key(|c| (c.interval.start, c.a, c.b, c.interval.end));
    out
}

/// Scans `text` for layout directives (`kind=`, `cols=`) without fully
/// parsing it — they decide which parser to construct before the real load.
fn sniff_directives(text: &str) -> Directives {
    let mut d = Directives::default();
    for line in text.lines() {
        let t = line.trim_start();
        if let Some(payload) = t.strip_prefix("#!") {
            // Sniffing ignores directive errors; load reports them.
            let _ = d.apply(0, payload);
        }
    }
    d
}

/// Shared line scanner: skips blanks and comments, accumulates `#!`
/// directives, splits data lines on whitespace / `,` / `;`.
pub(crate) struct LineCursor<R: BufRead> {
    reader: R,
    line: u64,
    buf: String,
    directives: Directives,
}

impl<R: BufRead> LineCursor<R> {
    pub(crate) fn new(reader: R) -> Self {
        Self {
            reader,
            line: 0,
            buf: String::new(),
            directives: Directives::default(),
        }
    }

    pub(crate) fn directives(&self) -> Directives {
        self.directives.clone()
    }

    /// The next data line as `(line_number, fields)`, with comment and
    /// directive lines consumed along the way.
    pub(crate) fn next_fields(&mut self) -> Option<Result<(u64, Vec<String>), IngestError>> {
        loop {
            self.buf.clear();
            match self.reader.read_line(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => {
                    return Some(Err(IngestError::Io(format!(
                        "read line {}: {e}",
                        self.line + 1
                    ))))
                }
            }
            self.line += 1;
            let t = self.buf.trim();
            if t.is_empty() {
                continue;
            }
            if let Some(payload) = t.strip_prefix("#!") {
                if let Err(e) = self.directives.apply(self.line, payload) {
                    return Some(Err(e));
                }
                continue;
            }
            if t.starts_with('#') || t.starts_with('%') {
                continue;
            }
            let fields: Vec<String> = t
                .split(|c: char| c.is_whitespace() || c == ',' || c == ';')
                .filter(|f| !f.is_empty())
                .map(String::from)
                .collect();
            return Some(Ok((self.line, fields)));
        }
    }
}

/// Parses one numeric time field.
pub(crate) fn parse_time_field(line: u64, name: &str, field: &str) -> Result<u64, IngestError> {
    field
        .parse::<u64>()
        .map_err(|_| IngestError::parse(line, format!("{name} {field:?} is not a timestamp")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_events_minimal() {
        let trace = ContactTrace::parse("0 1 0\n1 2 1\n", &IngestOptions::default()).unwrap();
        assert_eq!(trace.num_objects(), 3);
        assert_eq!(trace.horizon(), 2);
        assert_eq!(trace.records(), 2);
        assert_eq!(trace.skipped(), 0);
        assert_eq!(trace.contacts().len(), 2);
    }

    #[test]
    fn adjacent_events_merge_into_one_contact() {
        let trace =
            ContactTrace::parse("0 1 0\n0 1 1\n0 1 2\n0 1 5\n", &IngestOptions::default()).unwrap();
        assert_eq!(trace.contacts().len(), 2, "gap at t=3,4 splits the pair");
        assert_eq!(trace.contacts()[0].interval, TimeInterval::new(0, 2));
        assert_eq!(trace.contacts()[1].interval, TimeInterval::new(5, 5));
    }

    #[test]
    fn duration_column_expands_to_interval() {
        let trace = ContactTrace::parse("0 1 3 4\n", &IngestOptions::default()).unwrap();
        assert_eq!(trace.contacts()[0].interval, TimeInterval::new(0, 3));
        // Auto-rebase: first timestamp (3) became tick 0.
        assert_eq!(trace.horizon(), 4);
    }

    #[test]
    fn origin_directive_disables_rebase() {
        let trace = ContactTrace::parse(
            "#! streach-trace origin=0\n0 1 3\n",
            &IngestOptions::default(),
        )
        .unwrap();
        assert_eq!(trace.contacts()[0].interval, TimeInterval::new(3, 3));
        assert_eq!(trace.horizon(), 4);
    }

    #[test]
    fn time_scale_buckets_raw_timestamps() {
        // SocioPatterns-style 20-second sampling: raw 0,20,40 → ticks 0,1,2.
        let text = "#! streach-trace time_scale=20 origin=0\n0 1 0\n0 1 20\n0 1 40\n2 3 45\n";
        let trace = ContactTrace::parse(text, &IngestOptions::default()).unwrap();
        assert_eq!(trace.contacts()[0].interval, TimeInterval::new(0, 2));
        assert_eq!(trace.contacts()[1].interval, TimeInterval::new(2, 2));
    }

    #[test]
    fn dense_ids_sort_numerically_when_possible() {
        let trace = ContactTrace::parse("10 2 0\n2 7 1\n", &IngestOptions::default()).unwrap();
        // labels sorted numerically: 2, 7, 10 → ids 0, 1, 2.
        assert_eq!(trace.label(ObjectId(0)), "2");
        assert_eq!(trace.label(ObjectId(1)), "7");
        assert_eq!(trace.label(ObjectId(2)), "10");
        assert_eq!(trace.resolve("10"), Some(ObjectId(2)));
        assert_eq!(trace.resolve("99"), None);
        assert!(!trace.numeric_identity());
    }

    #[test]
    fn dense_ids_fall_back_to_lexicographic() {
        let trace = ContactTrace::parse("bob alice 0\n", &IngestOptions::default()).unwrap();
        assert_eq!(trace.label(ObjectId(0)), "alice");
        assert_eq!(trace.label(ObjectId(1)), "bob");
    }

    #[test]
    fn numeric_ids_preserve_values_and_holes() {
        let text = "#! streach-trace ids=numeric num_objects=6\n0 4 0\n";
        let trace = ContactTrace::parse(text, &IngestOptions::default()).unwrap();
        assert_eq!(trace.num_objects(), 6);
        assert_eq!(trace.contacts()[0].a, ObjectId(0));
        assert_eq!(trace.contacts()[0].b, ObjectId(4));
        assert!(trace.numeric_identity());
    }

    #[test]
    fn declared_universe_too_small_is_inconsistent() {
        let text = "#! streach-trace ids=numeric num_objects=3\n0 4 0\n";
        let err = ContactTrace::parse(text, &IngestOptions::default()).unwrap_err();
        assert!(matches!(err, IngestError::Inconsistent(_)), "{err}");
    }

    #[test]
    fn declared_horizon_too_small_is_inconsistent() {
        let err = ContactTrace::parse(
            "0 1 9\n",
            &IngestOptions::default().with_horizon(5).with_origin(0),
        )
        .unwrap_err();
        assert!(matches!(err, IngestError::Inconsistent(_)), "{err}");
    }

    #[test]
    fn strict_mode_reports_line_numbers() {
        let err = ContactTrace::parse("0 1 0\n\n# fine\n0 1 zz\n", &IngestOptions::default())
            .unwrap_err();
        assert!(matches!(err, IngestError::Parse { line: 4, .. }), "{err}");
        let err = ContactTrace::parse("0 1 0\nbroken\n", &IngestOptions::default()).unwrap_err();
        assert!(matches!(err, IngestError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn lossy_mode_counts_skips() {
        let text = "0 1 0\nbroken\n1 1 2\n2 3 nope\n1 2 3\n";
        let trace = ContactTrace::parse(text, &IngestOptions::lossy()).unwrap();
        assert_eq!(trace.records(), 2, "two well-formed records");
        assert_eq!(trace.skipped(), 3, "short line, self-contact, bad time");
    }

    #[test]
    fn empty_trace_is_valid() {
        let trace = ContactTrace::parse("# nothing here\n", &IngestOptions::default()).unwrap();
        assert_eq!(trace.num_objects(), 0);
        assert_eq!(trace.horizon(), 0);
        assert!(trace.contacts().is_empty());
        let dn = trace.build_dn();
        assert_eq!(dn.num_nodes(), 0);
    }

    #[test]
    fn from_parts_merges_and_validates() {
        let c = |a: u32, b: u32, s: Time, e: Time| {
            Contact::new(ObjectId(a), ObjectId(b), TimeInterval::new(s, e))
        };
        let trace =
            ContactTrace::from_parts(3, 10, [c(0, 1, 0, 2), c(1, 0, 3, 4), c(1, 2, 8, 9)]).unwrap();
        assert_eq!(trace.contacts().len(), 2, "abutting intervals merged");
        assert_eq!(trace.contacts()[0].interval, TimeInterval::new(0, 4));
        assert!(trace.numeric_identity());
        assert!(ContactTrace::from_parts(2, 10, [c(0, 5, 0, 1)]).is_err());
        assert!(ContactTrace::from_parts(3, 5, [c(0, 1, 0, 7)]).is_err());
    }

    #[test]
    fn build_dn_matches_figure_1() {
        // The paper's Figure 1 as an edge list (o1..o4 → 0..3).
        let text = "#! streach-trace kind=events ids=numeric num_objects=4 horizon=4 origin=0\n\
                    0 1 0\n1 3 1\n2 3 1\n0 1 2\n2 3 2\n0 1 3\n";
        let trace = ContactTrace::parse(text, &IngestOptions::default()).unwrap();
        let dn = trace.build_dn();
        dn.validate().expect("valid DN");
        assert_eq!(dn.num_nodes(), 9, "matches the dag.rs Figure 4/5 test");
    }

    #[test]
    fn sociopatterns_order_selectable_by_directive_and_option() {
        // A real tij-style file: time first, trailing metadata columns.
        let body = "20 1148 1201 A B\n40 1148 1201\n60 1201 1300\n";
        let with_directive = format!("#! streach-trace cols=tuv time_scale=20\n{body}");
        let trace = ContactTrace::parse(&with_directive, &IngestOptions::default()).unwrap();
        assert_eq!(trace.num_objects(), 3);
        assert_eq!(trace.label(ObjectId(0)), "1148");
        assert_eq!(trace.contacts()[0].interval, TimeInterval::new(0, 1));
        // Same body, selected by option instead of directive.
        let by_option = ContactTrace::parse(
            body,
            &IngestOptions::default().sociopatterns().with_time_scale(20),
        )
        .unwrap();
        assert_eq!(by_option.contacts(), trace.contacts());
        // Without either, uvt mode rejects the 5-column metadata line, and
        // the well-formed lines would transpose: u=40, v=1148, t=1201.
        assert!(ContactTrace::parse(body, &IngestOptions::default()).is_err());
        let transposed = ContactTrace::parse("40 1148 1201\n", &IngestOptions::default()).unwrap();
        assert_ne!(transposed.contacts(), trace.contacts());
    }

    #[test]
    fn lossy_mode_skips_overflowing_timestamps() {
        let text = "#! streach-trace origin=0\n0 1 0\n0 1 99999999999\n0 1 2\n";
        let err = ContactTrace::parse(text, &IngestOptions::default()).unwrap_err();
        assert!(matches!(err, IngestError::Parse { line: 3, .. }), "{err}");
        let lossy = ContactTrace::parse(text, &IngestOptions::lossy()).unwrap();
        assert_eq!(lossy.skipped(), 1);
        assert_eq!(lossy.records(), 2);
        assert_eq!(lossy.horizon(), 3);
    }

    #[test]
    fn skipped_records_do_not_inflate_the_dense_universe() {
        // The self-contact of "z" is skipped; "z" must not become an object.
        let lossy = ContactTrace::parse("a b 0\nz z 1\n", &IngestOptions::lossy()).unwrap();
        assert_eq!(lossy.num_objects(), 2);
        assert_eq!(lossy.skipped(), 1);
        assert_eq!(lossy.resolve("z"), None);
    }

    #[test]
    fn pinned_and_deferred_paths_agree() {
        // Dirty input: short line, self-contact, bad time, plus mergeable
        // adjacent records — both loading paths must produce the same trace
        // (contacts, labels, counts) under both id policies.
        let dirty = "0 1 0\nbroken\n1 1 2\n2 3 nope\n1 2 3\n0 1 4\n0 1 5 3\n";
        for numeric in [false, true] {
            let ids = if numeric { "numeric" } else { "dense" };
            let with_directives =
                format!("#! streach-trace origin=0 time_scale=1 ids={ids}\n{dirty}");
            let pinned = IngestOptions::lossy()
                .with_origin(0)
                .with_time_scale(1)
                .with_numeric_ids(numeric);
            assert!(pinned.is_pinned());
            assert!(!IngestOptions::lossy().is_pinned());
            let eager = ContactTrace::parse(dirty, &pinned).unwrap();
            let deferred = ContactTrace::parse(&with_directives, &IngestOptions::lossy()).unwrap();
            assert_eq!(eager.contacts(), deferred.contacts(), "ids={ids}");
            assert_eq!(eager.records(), deferred.records(), "ids={ids}");
            assert_eq!(eager.skipped(), deferred.skipped(), "ids={ids}");
            assert_eq!(eager.num_objects(), deferred.num_objects(), "ids={ids}");
            assert_eq!(eager.horizon(), deferred.horizon(), "ids={ids}");
            assert!(eager.skipped() > 0, "dirty input must count skips");
        }
    }

    #[test]
    fn pinned_skipped_records_do_not_inflate_the_numeric_universe() {
        // The second record references id 9 but precedes the declared
        // origin, so it is skipped in lossy mode — the universe must stay
        // at 2 objects on both loading paths.
        let body = "10 1 12\n0 9 5\n";
        let pinned = ContactTrace::parse(
            body,
            &IngestOptions::lossy()
                .with_origin(10)
                .with_time_scale(1)
                .with_numeric_ids(true),
        )
        .unwrap();
        let deferred = ContactTrace::parse(
            &format!("#! streach-trace origin=10 time_scale=1 ids=numeric\n{body}"),
            &IngestOptions::lossy(),
        )
        .unwrap();
        assert_eq!(pinned.num_objects(), 11, "ids 0..=10 observed via id 10");
        assert_eq!(pinned.num_objects(), deferred.num_objects());
        assert_eq!(pinned.skipped(), 1);
        assert_eq!(pinned.contacts(), deferred.contacts());
        // And with only small surviving ids, the skipped 9 must vanish.
        let small = ContactTrace::parse(
            "0 1 12\n0 9 5\n",
            &IngestOptions::lossy()
                .with_origin(10)
                .with_time_scale(1)
                .with_numeric_ids(true),
        )
        .unwrap();
        assert_eq!(small.num_objects(), 2, "skipped record must not add id 9");
    }

    #[test]
    fn pinned_strict_reports_the_same_first_error() {
        // One trace, parameters identical by directive (deferred) and by
        // option (pinned): strict mode must fail on the same line either
        // way.
        let text = "#! streach-trace ids=numeric\n0 1 5\n1 1 7\n";
        let deferred = ContactTrace::parse(text, &IngestOptions::strict()).unwrap_err();
        let pinned = ContactTrace::parse(
            text,
            &IngestOptions::strict()
                .with_origin(5)
                .with_time_scale(1)
                .with_numeric_ids(true),
        )
        .unwrap_err();
        assert_eq!(deferred, pinned);
        assert!(matches!(deferred, IngestError::Parse { line: 3, .. }));
    }

    #[test]
    fn zero_time_scale_never_takes_the_pinned_path() {
        let opts = IngestOptions::strict()
            .with_origin(0)
            .with_time_scale(0)
            .with_numeric_ids(true);
        assert!(!opts.is_pinned(), "scale 0 must fall back to deferred");
        let err = ContactTrace::parse("0 1 0\n", &opts).unwrap_err();
        assert!(matches!(err, IngestError::Inconsistent(_)), "{err}");
    }

    #[test]
    fn merge_window_coalesces_and_flushes() {
        let iv = TimeInterval::new;
        let mut w = MergeWindow::new(2);
        let mut out = Vec::new();
        w.push((0, 1), iv(0, 1), &mut out);
        w.push((0, 1), iv(2, 3), &mut out); // abuts → coalesce in place
        assert!(out.is_empty());
        w.push((0, 1), iv(10, 10), &mut out); // gap → previous run flushes
        assert_eq!(out, vec![(0, 1, iv(0, 3))]);
        w.push((2, 3), iv(0, 0), &mut out);
        w.push((4, 5), iv(0, 0), &mut out); // over cap → oldest pair flushes
        assert_eq!(out.len(), 2);
        w.flush(&mut out);
        assert_eq!(out.len(), 4, "all open pairs flush at the end");
    }

    #[test]
    fn sorted_trace_through_pinned_path_matches_from_parts() {
        // A SocioPatterns-ish sorted stream of repeated snapshots: the merge
        // window should fold each pair's run; final contacts match the
        // in-memory constructor.
        let mut text = String::new();
        for t in 0..50u32 {
            text.push_str(&format!("0 1 {t}\n"));
            if t % 2 == 0 {
                text.push_str(&format!("2 3 {t}\n"));
            }
        }
        let trace = ContactTrace::parse(
            &text,
            &IngestOptions::strict()
                .with_origin(0)
                .with_time_scale(1)
                .with_numeric_ids(true),
        )
        .unwrap();
        assert_eq!(trace.records(), 75);
        // 0-1 is one unbroken contact; 2-3 breaks every other tick.
        assert_eq!(trace.contacts()[0].interval, TimeInterval::new(0, 49));
        assert_eq!(trace.contacts().len(), 1 + 25);
    }

    #[test]
    fn directive_errors_carry_lines() {
        let err = ContactTrace::parse("#! streach-trace kind=nope\n", &IngestOptions::default())
            .unwrap_err();
        assert!(matches!(err, IngestError::Parse { line: 1, .. }), "{err}");
    }
}
