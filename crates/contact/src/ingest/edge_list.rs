//! Temporal edge-list parser: the SNAP / SocioPatterns family of formats.
//!
//! One contact per line. Two column orders exist in the wild:
//!
//! * **`u v t [duration]`** (SNAP temporal networks, most exported CSVs) —
//!   the default. The optional fourth column is a duration in raw time
//!   units, making the record cover `[t, t + duration − 1]`; without it the
//!   record is instantaneous (`[t, t]`).
//! * **`t u v …`** (SocioPatterns `tij` releases) — selected by
//!   [`EdgeListSource::sociopatterns`]. Trailing columns (the `Ci Cj`
//!   community labels of some releases) are ignored, as the format
//!   specifies.
//!
//! Fields split on any run of whitespace, `,` or `;`, so space-, tab- and
//! comma-separated variants all parse. See `DATAFORMATS.md` for the full
//! contract.

use super::{parse_time_field, ContactSource, Directives, IngestError, LineCursor, RawRecord};
use std::io::BufRead;

/// Parser for temporal edge lists (`u v t [duration]`, or `t u v` in
/// SocioPatterns mode).
pub struct EdgeListSource<R: BufRead> {
    cursor: LineCursor<R>,
    time_first: bool,
}

impl<R: BufRead> EdgeListSource<R> {
    /// A parser for the default `u v t [duration]` column order.
    pub fn new(reader: R) -> Self {
        Self {
            cursor: LineCursor::new(reader),
            time_first: false,
        }
    }

    /// A parser for the SocioPatterns `t i j …` column order (extra columns
    /// ignored).
    pub fn sociopatterns(reader: R) -> Self {
        Self {
            cursor: LineCursor::new(reader),
            time_first: true,
        }
    }
}

impl<R: BufRead> ContactSource for EdgeListSource<R> {
    fn next_record(&mut self) -> Option<Result<RawRecord, IngestError>> {
        let (line, mut fields) = match self.cursor.next_fields()? {
            Ok(lf) => lf,
            Err(e) => return Some(Err(e)),
        };
        let rec = if self.time_first {
            if fields.len() < 3 {
                return Some(Err(IngestError::parse(
                    line,
                    format!("expected `t i j …`, got {} fields", fields.len()),
                )));
            }
            let v = fields.swap_remove(2);
            let u = fields.swap_remove(1);
            match parse_time_field(line, "time", &fields[0]) {
                Ok(t) => RawRecord {
                    line,
                    u,
                    v,
                    start: t,
                    end: t,
                },
                Err(e) => return Some(Err(e)),
            }
        } else {
            if fields.len() < 3 || fields.len() > 4 {
                return Some(Err(IngestError::parse(
                    line,
                    format!("expected `u v t [duration]`, got {} fields", fields.len()),
                )));
            }
            let t = match parse_time_field(line, "time", &fields[2]) {
                Ok(t) => t,
                Err(e) => return Some(Err(e)),
            };
            let end = if fields.len() == 4 {
                let dur = match parse_time_field(line, "duration", &fields[3]) {
                    Ok(d) => d,
                    Err(e) => return Some(Err(e)),
                };
                if dur == 0 {
                    return Some(Err(IngestError::parse(line, "duration must be ≥ 1")));
                }
                match t.checked_add(dur - 1) {
                    Some(end) => end,
                    None => {
                        return Some(Err(IngestError::parse(
                            line,
                            format!("duration {dur} overflows from {t}"),
                        )))
                    }
                }
            } else {
                t
            };
            let v = fields.swap_remove(1);
            let u = fields.swap_remove(0);
            RawRecord {
                line,
                u,
                v,
                start: t,
                end,
            }
        };
        Some(Ok(rec))
    }

    fn directives(&self) -> Directives {
        self.cursor.directives()
    }

    fn name(&self) -> &'static str {
        "edge list"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut s: impl ContactSource) -> (Vec<RawRecord>, Vec<IngestError>) {
        let mut ok = Vec::new();
        let mut errs = Vec::new();
        while let Some(r) = s.next_record() {
            match r {
                Ok(rec) => ok.push(rec),
                Err(e) => errs.push(e),
            }
        }
        (ok, errs)
    }

    #[test]
    fn parses_whitespace_and_csv() {
        let (ok, errs) = drain(EdgeListSource::new("1 2 10\n3,4,11\n5;6;12\n".as_bytes()));
        assert!(errs.is_empty());
        assert_eq!(ok.len(), 3);
        assert_eq!(ok[0].u, "1");
        assert_eq!(ok[1].v, "4");
        assert_eq!(ok[2].start, 12);
        assert_eq!(ok[0].line, 1);
        assert_eq!(ok[2].line, 3);
    }

    #[test]
    fn duration_column() {
        let (ok, _) = drain(EdgeListSource::new("1 2 10 5\n".as_bytes()));
        assert_eq!((ok[0].start, ok[0].end), (10, 14));
        let (_, errs) = drain(EdgeListSource::new("1 2 10 0\n".as_bytes()));
        assert_eq!(errs.len(), 1, "zero duration is malformed");
    }

    #[test]
    fn sociopatterns_order_ignores_extras() {
        let (ok, errs) = drain(EdgeListSource::sociopatterns(
            "20 1148 1201 A B\n40 1148 1201\n".as_bytes(),
        ));
        assert!(errs.is_empty());
        assert_eq!(ok[0].u, "1148");
        assert_eq!(ok[0].v, "1201");
        assert_eq!((ok[0].start, ok[0].end), (20, 20));
        assert_eq!(ok[1].start, 40);
    }

    #[test]
    fn wrong_arity_is_malformed() {
        let (_, errs) = drain(EdgeListSource::new("1 2\n1 2 3 4 5\n".as_bytes()));
        assert_eq!(errs.len(), 2);
        assert!(matches!(errs[0], IngestError::Parse { line: 1, .. }));
        assert!(matches!(errs[1], IngestError::Parse { line: 2, .. }));
    }

    #[test]
    fn comments_and_directives_skipped() {
        let src = EdgeListSource::new(
            "# comment\n%% matrix-market style\n#! streach-trace horizon=9\n1 2 0\n".as_bytes(),
        );
        let mut src = src;
        let (ok, errs) = {
            let mut ok = Vec::new();
            let mut errs = Vec::new();
            while let Some(r) = src.next_record() {
                match r {
                    Ok(rec) => ok.push(rec),
                    Err(e) => errs.push(e),
                }
            }
            (ok, errs)
        };
        assert!(errs.is_empty());
        assert_eq!(ok.len(), 1);
        assert_eq!(src.directives().horizon, Some(9));
    }
}
