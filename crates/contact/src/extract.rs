//! Contact extraction: from trajectories to contact events and contacts
//! (paper §4).
//!
//! A contact network is materialized by a spatiotemporal self-join of the
//! trajectory set: objects within the threshold `d_T` at a tick are in
//! contact. Events arrive in tick order, which both the TEN/DN builders and
//! the oracle consume directly. This is one of the two roads into the
//! contact network — the other is [`crate::ingest`], which loads the same
//! maximal [`Contact`]s from real trace files with no trajectories at all.

use reach_core::{Contact, ContactAccumulator, ContactEvent, Coord, Time, TimeInterval};
use reach_traj::{window_self_join, TrajectoryStore};

/// All instantaneous proximity events of `store` during `window`, in tick
/// order.
pub fn extract_events(
    store: &TrajectoryStore,
    window: TimeInterval,
    threshold: Coord,
) -> Vec<ContactEvent> {
    window_self_join(store, window, threshold)
}

/// Events grouped per tick: `result[t - window.start]` holds the pairs in
/// contact at tick `t` (normalized `a < b`). The dense layout is what the
/// per-tick component computation wants.
pub fn events_by_tick(
    store: &TrajectoryStore,
    window: TimeInterval,
    threshold: Coord,
) -> Vec<Vec<(u32, u32)>> {
    let Some(window_clipped) = window.intersect(&store.horizon_interval()) else {
        return Vec::new();
    };
    let mut per_tick: Vec<Vec<(u32, u32)>> = vec![Vec::new(); window_clipped.len() as usize];
    for ev in extract_events(store, window_clipped, threshold) {
        per_tick[(ev.t - window_clipped.start) as usize].push((ev.a.0, ev.b.0));
    }
    per_tick
}

/// The contact network `C` of `store` during `window`: maximal-validity
/// [`Contact`]s, sorted by start tick (paper §3.1).
pub fn extract_contacts(
    store: &TrajectoryStore,
    window: TimeInterval,
    threshold: Coord,
) -> Vec<Contact> {
    let mut acc = ContactAccumulator::new();
    for ev in extract_events(store, window, threshold) {
        acc.push(ev);
    }
    acc.finish()
}

/// Summary counts of a dataset's instantaneous contact structure, reusable
/// by the TEN statistics and by dataset reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// Total proximity events (pair × tick).
    pub events: u64,
    /// Distinct maximal contacts.
    pub contacts: u64,
    /// Ticks with at least one event.
    pub active_ticks: u64,
}

/// Counts events and contacts in one pass.
pub fn count_events(
    store: &TrajectoryStore,
    window: TimeInterval,
    threshold: Coord,
) -> EventCounts {
    let mut acc = ContactAccumulator::new();
    let mut events = 0u64;
    let mut last_tick: Option<Time> = None;
    let mut active_ticks = 0u64;
    for ev in extract_events(store, window, threshold) {
        events += 1;
        if last_tick != Some(ev.t) {
            active_ticks += 1;
            last_tick = Some(ev.t);
        }
        acc.push(ev);
    }
    EventCounts {
        events,
        contacts: acc.finish().len() as u64,
        active_ticks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_core::{Environment, ObjectId, Point};
    use reach_traj::Trajectory;

    /// Two objects adjacent during ticks [1,2] of a 4-tick horizon; a third
    /// always far away.
    fn store() -> TrajectoryStore {
        let rows: Vec<Vec<(f32, f32)>> = vec![
            vec![(0.0, 0.0), (10.0, 0.0), (20.0, 0.0), (30.0, 0.0)],
            vec![(500.0, 0.0), (10.5, 0.0), (20.5, 0.0), (300.0, 0.0)],
            vec![(900.0, 900.0); 4],
        ];
        let trajs = rows
            .into_iter()
            .enumerate()
            .map(|(i, ps)| {
                Trajectory::new(
                    ObjectId(i as u32),
                    0,
                    ps.into_iter().map(|(x, y)| Point::new(x, y)).collect(),
                )
            })
            .collect();
        TrajectoryStore::new(Environment::square(1000.0), trajs).unwrap()
    }

    #[test]
    fn contacts_have_maximal_intervals() {
        let s = store();
        let cs = extract_contacts(&s, TimeInterval::new(0, 3), 1.0);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].a, ObjectId(0));
        assert_eq!(cs[0].b, ObjectId(1));
        assert_eq!(cs[0].interval, TimeInterval::new(1, 2));
    }

    #[test]
    fn events_by_tick_dense_layout() {
        let s = store();
        let per = events_by_tick(&s, TimeInterval::new(0, 3), 1.0);
        assert_eq!(per.len(), 4);
        assert!(per[0].is_empty());
        assert_eq!(per[1], vec![(0, 1)]);
        assert_eq!(per[2], vec![(0, 1)]);
        assert!(per[3].is_empty());
    }

    #[test]
    fn events_by_tick_subwindow_offsets() {
        let s = store();
        let per = events_by_tick(&s, TimeInterval::new(2, 3), 1.0);
        assert_eq!(per.len(), 2);
        assert_eq!(per[0], vec![(0, 1)]);
        assert!(per[1].is_empty());
    }

    #[test]
    fn counts_agree_with_lists() {
        let s = store();
        let c = count_events(&s, TimeInterval::new(0, 3), 1.0);
        assert_eq!(
            c,
            EventCounts {
                events: 2,
                contacts: 1,
                active_ticks: 2
            }
        );
    }

    #[test]
    fn window_outside_horizon_is_empty() {
        let s = store();
        assert!(events_by_tick(&s, TimeInterval::new(10, 20), 1.0).is_empty());
        assert!(extract_contacts(&s, TimeInterval::new(10, 20), 1.0).is_empty());
    }
}
