//! Size statistics: TEN vs DN reduction (paper §6.2.1.1, Figure 10).

use crate::dag::{DnGraph, GraphSize};
use crate::extract::count_events;
use reach_core::{Coord, TimeInterval};
use reach_traj::TrajectoryStore;

/// Side-by-side sizes of the unreduced TEN and the reduced DN of one
/// dataset, with the reduction percentages the paper reports (≈81 %/80 %
/// fewer vertices/edges for RWP, ≈64 %/61 % for VN).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReductionStats {
    /// Unreduced TEN size.
    pub ten: GraphSize,
    /// Reduced DN size.
    pub dn: GraphSize,
}

impl ReductionStats {
    /// Percentage of vertices removed by the reduction phase.
    pub fn vertex_reduction_pct(&self) -> f64 {
        reduction_pct(self.ten.vertices, self.dn.vertices)
    }

    /// Percentage of edges removed by the reduction phase.
    pub fn edge_reduction_pct(&self) -> f64 {
        reduction_pct(self.ten.edges, self.dn.edges)
    }
}

fn reduction_pct(before: u64, after: u64) -> f64 {
    if before == 0 {
        0.0
    } else {
        100.0 * (1.0 - after as f64 / before as f64)
    }
}

/// Computes the reduction statistics of a dataset (builds the DN).
pub fn reduction_stats(store: &TrajectoryStore, threshold: Coord) -> ReductionStats {
    let dn = DnGraph::build(store, threshold);
    reduction_stats_for(store, threshold, &dn)
}

/// Computes the reduction statistics given an already-built DN.
pub fn reduction_stats_for(
    store: &TrajectoryStore,
    threshold: Coord,
    dn: &DnGraph,
) -> ReductionStats {
    let window = TimeInterval::new(0, store.horizon().saturating_sub(1));
    let counts = count_events(store, window, threshold);
    ReductionStats {
        ten: DnGraph::ten_size(store.num_objects(), store.horizon(), counts.events),
        dn: dn.size(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_core::{Environment, ObjectId, Point};
    use reach_traj::Trajectory;

    #[test]
    fn reduction_pct_math() {
        let s = ReductionStats {
            ten: GraphSize {
                vertices: 100,
                edges: 200,
            },
            dn: GraphSize {
                vertices: 19,
                edges: 40,
            },
        };
        assert!((s.vertex_reduction_pct() - 81.0).abs() < 1e-9);
        assert!((s.edge_reduction_pct() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn zero_before_is_zero_pct() {
        let s = ReductionStats {
            ten: GraphSize {
                vertices: 0,
                edges: 0,
            },
            dn: GraphSize {
                vertices: 0,
                edges: 0,
            },
        };
        assert_eq!(s.vertex_reduction_pct(), 0.0);
    }

    #[test]
    fn end_to_end_reduction_on_tiny_store() {
        // Two objects side by side for 10 ticks: TEN has 20 vertices,
        // DN has a single 2-member node.
        let env = Environment::square(100.0);
        let trajs = (0..2)
            .map(|i| {
                Trajectory::new(
                    ObjectId(i),
                    0,
                    (0..10).map(|_| Point::new(i as f32 * 0.5, 0.0)).collect(),
                )
            })
            .collect();
        let store = TrajectoryStore::new(env, trajs).unwrap();
        let s = reduction_stats(&store, 1.0);
        assert_eq!(s.ten.vertices, 20);
        assert_eq!(s.ten.edges, 2 * 9 + 10);
        assert_eq!(s.dn.vertices, 1);
        assert_eq!(s.dn.edges, 0);
        assert!(s.vertex_reduction_pct() > 90.0);
    }
}
