//! Multi-resolution augmentation: the long edges of `HN` (paper §5.1.2.2).
//!
//! For every resolution `L`, the paper adds a *long edge* from each component
//! at window boundary `t_a = kL` to every component at `t_a + L` reachable by
//! a length-`L` path, yielding `HN = DN_1 ∪ DN_2 ∪ … ∪ DN_32` (the
//! experimentally optimal six resolutions, §6.2.1.4).
//!
//! With run-merged nodes, only one window per node per level needs explicit
//! edges — the window in which the node *dies* (`t_a = ⌊end/L⌋·L`): in every
//! earlier window the node is still alive at the window's end and the item
//! simply stays put (member sets are frozen over a node's interval, see
//! [`crate::dag`]). This matches the paper's observation that only some
//! vertices carry edges at a given resolution (Table 4).
//!
//! Construction is by exact composition: the bundle at level `2k` is the
//! level-`k` advance applied twice, because a node dying inside a half-window
//! launches its stored level-`k` bundle at exactly that half-window boundary.

use crate::dag::{Csr, DnAccess, DnGraph};
use reach_core::{Time, TimeInterval};

/// The resolutions used by the paper's final configuration
/// (`DN_2 … DN_32`, six resolutions counting `DN_1`).
pub const DEFAULT_LEVELS: [Time; 5] = [2, 4, 8, 16, 32];

/// Launch boundary of `interval` at `level`: the unique multiple of `level`
/// in `(end - level, end]`, provided the node is alive there and the window
/// target `t_a + level` still exists (`≤ horizon - 1`).
#[inline]
pub fn launch_boundary(interval: TimeInterval, level: Time, horizon: Time) -> Option<Time> {
    let ta = (interval.end / level) * level;
    (ta >= interval.start && ta + level <= horizon.saturating_sub(1)).then_some(ta)
}

/// The long-edge bundles of every materialized resolution.
#[derive(Clone, Debug)]
pub struct MultiRes {
    levels: Vec<Time>,
    bundles: Vec<Csr>,
}

impl MultiRes {
    /// Builds bundles for a doubling chain of `levels` (e.g. `[2,4,8,16,32]`;
    /// must start at 2 and double). An empty slice yields a `DN_1`-only
    /// index.
    ///
    /// Generic over [`DnAccess`], so bundles build identically from a
    /// resident [`DnGraph`] and a spill-backed
    /// [`StreamedDn`](crate::StreamedDn). The bundle CSRs themselves stay
    /// resident — they are compact edge lists, small next to the decoded
    /// node data the access trait bounds.
    pub fn build<D: DnAccess>(mut dn: D, levels: &[Time]) -> Self {
        for (i, &l) in levels.iter().enumerate() {
            if i == 0 {
                assert_eq!(l, 2, "first long-edge level must be 2");
            } else {
                assert_eq!(
                    l,
                    levels[i - 1] * 2,
                    "levels must form a doubling chain (got {l} after {})",
                    levels[i - 1]
                );
            }
        }
        let horizon = dn.horizon();
        let n = dn.num_nodes();
        let mut bundles: Vec<Csr> = Vec::with_capacity(levels.len());
        let mut scratch: Vec<u32> = Vec::new();
        let mut fwd_buf: Vec<u32> = Vec::new();
        for (idx, &level) in levels.iter().enumerate() {
            let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n];
            for v in 0..n as u32 {
                let Some(ta) = launch_boundary(dn.interval(v), level, horizon) else {
                    continue;
                };
                let bundle = if idx == 0 {
                    level2_bundle(&mut dn, v, ta, &mut scratch, &mut fwd_buf)
                } else {
                    compose(
                        &mut dn,
                        &bundles[idx - 1],
                        levels[idx - 1],
                        v,
                        ta,
                        &mut scratch,
                    )
                };
                lists[v as usize] = bundle;
            }
            bundles.push(Csr::from_lists(&lists));
        }
        Self {
            levels: levels.to_vec(),
            bundles,
        }
    }

    /// Materialized levels, ascending.
    pub fn levels(&self) -> &[Time] {
        &self.levels
    }

    /// The stored long-edge targets of `node` at `levels()[level_idx]`
    /// (empty when the node has no explicit bundle at that level).
    #[inline]
    pub fn bundle(&self, level_idx: usize, node: u32) -> &[u32] {
        self.bundles[level_idx].out(node)
    }

    /// Total long edges at one level.
    pub fn num_edges(&self, level_idx: usize) -> u64 {
        self.bundles[level_idx].num_edges()
    }

    /// Average out-degree at a level, counted over nodes that carry at least
    /// one edge at that level — the statistic of the paper's Table 4.
    pub fn avg_degree(&self, level_idx: usize) -> f64 {
        let csr = &self.bundles[level_idx];
        let mut edges = 0u64;
        let mut nodes = 0u64;
        for v in 0..csr.num_nodes() as u32 {
            let d = csr.out(v).len();
            if d > 0 {
                edges += d as u64;
                nodes += 1;
            }
        }
        if nodes == 0 {
            0.0
        } else {
            edges as f64 / nodes as f64
        }
    }
}

/// Level-2 base case: the hold set two ticks after `ta`, starting from `v`
/// alive at `ta` (with `v.end ∈ {ta, ta+1}` by launch-boundary construction).
fn level2_bundle<D: DnAccess>(
    dn: &mut D,
    v: u32,
    ta: Time,
    scratch: &mut Vec<u32>,
    fwd_buf: &mut Vec<u32>,
) -> Vec<u32> {
    scratch.clear();
    let end = dn.interval(v).end;
    debug_assert!(end == ta || end == ta + 1, "launch window must contain end");
    dn.fwd_into(v, fwd_buf);
    if end == ta + 1 {
        // Alive through ta+1; one DN1 dispersal lands exactly at ta+2.
        scratch.extend_from_slice(fwd_buf);
    } else {
        // Dies at ta: successors live at ta+1; advance each one more tick.
        let succ: Vec<u32> = std::mem::take(fwd_buf);
        for &w in &succ {
            if dn.interval(w).end >= ta + 2 {
                scratch.push(w);
            } else {
                dn.fwd_into(w, fwd_buf);
                scratch.extend_from_slice(fwd_buf);
            }
        }
        *fwd_buf = succ;
    }
    scratch.sort_unstable();
    scratch.dedup();
    scratch.clone()
}

/// Doubling composition: the level-`2k` bundle of `v` at `ta` is the
/// level-`k` advance applied at `ta` and again at `ta + k`.
fn compose<D: DnAccess>(
    dn: &mut D,
    lower: &Csr,
    k: Time,
    v: u32,
    ta: Time,
    scratch: &mut Vec<u32>,
) -> Vec<u32> {
    // Hold set at ta + k.
    let mid: Vec<u32> = advance_one(dn, lower, k, v, ta);
    // Hold set at ta + 2k.
    scratch.clear();
    for m in mid {
        if dn.interval(m).end >= ta + 2 * k {
            scratch.push(m);
        } else {
            // m dies inside [ta+k, ta+2k) ⇒ its stored level-k launch is
            // exactly ta+k, so its bundle is the advance we need.
            debug_assert_eq!((dn.interval(m).end / k) * k, ta + k);
            scratch.extend_from_slice(lower.out(m));
        }
    }
    scratch.sort_unstable();
    scratch.dedup();
    scratch.clone()
}

fn advance_one<D: DnAccess>(dn: &mut D, lower: &Csr, k: Time, v: u32, ta: Time) -> Vec<u32> {
    if dn.interval(v).end >= ta + k {
        vec![v]
    } else {
        debug_assert_eq!((dn.interval(v).end / k) * k, ta);
        lower.out(v).to_vec()
    }
}

/// Reference hold-set computation on `DN_1` alone: every node alive at
/// `to_t` that can hold an item that sits in `v` now. Exponential-ish, used
/// only to validate bundles in tests.
pub fn hold_set_dn1(dn: &DnGraph, v: u32, to_t: Time) -> Vec<u32> {
    fn rec(dn: &DnGraph, v: u32, to_t: Time, out: &mut Vec<u32>) {
        if dn.node(v).interval.end >= to_t {
            out.push(v);
            return;
        }
        for &w in dn.fwd(v) {
            rec(dn, w, to_t, out);
        }
    }
    let mut out = Vec::new();
    debug_assert!(dn.node(v).interval.start <= to_t);
    rec(dn, v, to_t, &mut out);
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_world(seed: u64, n: usize, horizon: Time, density: f64) -> DnGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let script: Vec<Vec<(u32, u32)>> = (0..horizon)
            .map(|_| {
                let mut pairs = Vec::new();
                for a in 0..n as u32 {
                    for b in (a + 1)..n as u32 {
                        if rng.gen_bool(density) {
                            pairs.push((a, b));
                        }
                    }
                }
                pairs
            })
            .collect();
        let g = DnGraph::build_from_ticks(n, horizon, |t| script[t as usize].as_slice());
        g.validate().expect("random world is structurally valid");
        g
    }

    #[test]
    fn launch_boundary_rules() {
        // Node alive [3, 9], level 4, horizon 20: ta = 8.
        assert_eq!(launch_boundary(TimeInterval::new(3, 9), 4, 20), Some(8));
        // Node dies before ever being alive at its launch: [5, 6], level 4
        // → ta = 4 < start ⇒ none.
        assert_eq!(launch_boundary(TimeInterval::new(5, 6), 4, 20), None);
        // Window target beyond horizon: [3, 9], level 4, horizon 12 ⇒
        // ta + 4 = 12 > 11 ⇒ none.
        assert_eq!(launch_boundary(TimeInterval::new(3, 9), 4, 12), None);
        // Exactly at the horizon boundary is allowed.
        assert_eq!(launch_boundary(TimeInterval::new(3, 9), 4, 13), Some(8));
    }

    #[test]
    fn bundles_match_dn1_hold_sets_on_random_worlds() {
        for seed in 0..6u64 {
            let dn = random_world(seed, 6, 40, 0.08);
            let mr = MultiRes::build(&dn, &DEFAULT_LEVELS);
            for (idx, &level) in mr.levels().iter().enumerate() {
                for v in 0..dn.num_nodes() as u32 {
                    let expected = match launch_boundary(dn.node(v).interval, level, dn.horizon()) {
                        Some(ta) => hold_set_dn1(&dn, v, ta + level),
                        None => Vec::new(),
                    };
                    assert_eq!(
                        mr.bundle(idx, v),
                        expected.as_slice(),
                        "seed {seed} level {level} node {v} ({:?})",
                        dn.node(v).interval
                    );
                }
            }
        }
    }

    #[test]
    fn bundles_are_sorted_and_deduped() {
        let dn = random_world(9, 8, 64, 0.10);
        let mr = MultiRes::build(&dn, &DEFAULT_LEVELS);
        for idx in 0..mr.levels().len() {
            for v in 0..dn.num_nodes() as u32 {
                let b = mr.bundle(idx, v);
                assert!(b.windows(2).all(|w| w[0] < w[1]), "unsorted bundle");
            }
        }
    }

    #[test]
    fn single_level_index() {
        let dn = random_world(3, 5, 20, 0.1);
        let mr = MultiRes::build(&dn, &[2]);
        assert_eq!(mr.levels(), &[2]);
        // Degenerate empty chain is also allowed.
        let none = MultiRes::build(&dn, &[]);
        assert!(none.levels().is_empty());
    }

    #[test]
    #[should_panic(expected = "doubling chain")]
    fn non_doubling_levels_rejected() {
        let dn = random_world(1, 3, 10, 0.1);
        let _ = MultiRes::build(&dn, &[2, 6]);
    }

    #[test]
    fn avg_degree_counts_only_nodes_with_edges() {
        let dn = random_world(5, 6, 48, 0.12);
        let mr = MultiRes::build(&dn, &DEFAULT_LEVELS);
        for idx in 0..mr.levels().len() {
            let avg = mr.avg_degree(idx);
            if mr.num_edges(idx) > 0 {
                assert!(avg >= 1.0, "level {idx}: avg degree {avg} < 1");
            } else {
                assert_eq!(avg, 0.0);
            }
        }
    }

    #[test]
    fn higher_levels_have_no_smaller_reach() {
        // Sanity on the paper's Table-4 trend: bundles at higher resolutions
        // cover windows twice as long, so their average degree should not
        // collapse (weak monotonicity check on a dense-ish world).
        let dn = random_world(7, 8, 96, 0.15);
        let mr = MultiRes::build(&dn, &DEFAULT_LEVELS);
        let d2 = mr.avg_degree(0);
        let d32 = mr.avg_degree(mr.levels().len() - 1);
        assert!(
            d32 >= d2 * 0.5,
            "expected long windows to keep spreading: d2={d2}, d32={d32}"
        );
    }
}
