//! Brute-force reachability ground truth (the paper's §3.2 reachability
//! definition, evaluated literally).
//!
//! Forward simulation of item propagation directly on per-tick contact
//! events — definition 3.4's "chain of temporally ordered contacts" by
//! construction: at every tick the infected set closes over the tick's
//! connected components (snapshot symmetry + transitivity, paper properties
//! 5.1/5.2). Quadratic-ish and memory-hungry — exists purely as the oracle
//! every index in the workspace is validated against.

use reach_core::{Coord, ObjectId, Query, QueryOutcome, Time, TimeInterval, UnionFind};
use reach_traj::TrajectoryStore;
use std::collections::HashMap;

/// Ground-truth evaluator over materialized per-tick contact events.
#[derive(Clone, Debug)]
pub struct Oracle {
    per_tick: Vec<Vec<(u32, u32)>>,
    num_objects: usize,
}

impl Oracle {
    /// Builds the oracle from a trajectory store.
    pub fn build(store: &TrajectoryStore, threshold: Coord) -> Self {
        Self {
            per_tick: crate::extract::events_by_tick(store, store.horizon_interval(), threshold),
            num_objects: store.num_objects(),
        }
    }

    /// Builds the oracle from raw per-tick events (tick `t` ↦
    /// `per_tick[t]`).
    pub fn from_events(num_objects: usize, per_tick: Vec<Vec<(u32, u32)>>) -> Self {
        Self {
            per_tick,
            num_objects,
        }
    }

    /// Number of objects.
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// Horizon covered by the recorded events.
    pub fn horizon(&self) -> Time {
        self.per_tick.len() as Time
    }

    /// Simulates propagation of an item initiated by `source` at
    /// `interval.start`. Returns the infected flags after `interval.end` and
    /// each object's infection tick. Stops early when `stop_at` gets
    /// infected.
    pub fn spread(
        &self,
        source: ObjectId,
        interval: TimeInterval,
        stop_at: Option<ObjectId>,
    ) -> (Vec<bool>, Vec<Option<Time>>) {
        let mut infected = vec![false; self.num_objects];
        let mut when: Vec<Option<Time>> = vec![None; self.num_objects];
        if source.index() >= self.num_objects {
            return (infected, when);
        }
        infected[source.index()] = true;
        when[source.index()] = Some(interval.start);
        if stop_at == Some(source) {
            return (infected, when);
        }
        let mut uf = UnionFind::new(self.num_objects);
        let mut groups: HashMap<u32, Vec<u32>> = HashMap::new();
        for t in interval.ticks() {
            let Some(pairs) = self.per_tick.get(t as usize) else {
                break; // beyond the recorded horizon nothing changes
            };
            if pairs.is_empty() {
                continue;
            }
            uf.reset();
            for &(a, b) in pairs {
                uf.union(a, b);
            }
            groups.clear();
            for &(a, b) in pairs {
                let ra = uf.find(a);
                groups.entry(ra).or_default().push(a);
                let rb = uf.find(b);
                debug_assert_eq!(ra, rb);
                groups.entry(rb).or_default().push(b);
            }
            for members in groups.values_mut() {
                members.sort_unstable();
                members.dedup();
                if members.iter().any(|&m| infected[m as usize]) {
                    for &m in members.iter() {
                        if !infected[m as usize] {
                            infected[m as usize] = true;
                            when[m as usize] = Some(t);
                            if stop_at == Some(ObjectId(m)) {
                                return (infected, when);
                            }
                        }
                    }
                }
            }
        }
        (infected, when)
    }

    /// Ground-truth answer for a reachability query.
    pub fn evaluate(&self, q: &Query) -> QueryOutcome {
        if q.source == q.dest {
            return QueryOutcome::reachable_at(q.interval.start);
        }
        let (_, when) = self.spread(q.source, q.interval, Some(q.dest));
        match when.get(q.dest.index()).copied().flatten() {
            Some(t) => QueryOutcome::reachable_at(t),
            None => QueryOutcome::UNREACHABLE,
        }
    }

    /// All objects reachable from `source` during `interval` (the batch
    /// primitive behind the paper's epidemiology / watch-list use cases).
    pub fn reachable_set(&self, source: ObjectId, interval: TimeInterval) -> Vec<ObjectId> {
        let (infected, _) = self.spread(source, interval, None);
        infected
            .iter()
            .enumerate()
            .filter(|(_, &i)| i)
            .map(|(i, _)| ObjectId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle() -> Oracle {
        // Figure 1 of the paper (objects o1..o4 as ids 0..3):
        // t=0: o1-o2; t=1: o2-o4, o3-o4; t=2: o1-o2, o3-o4; t=3: o1-o2.
        Oracle::from_events(
            4,
            vec![
                vec![(0, 1)],
                vec![(1, 3), (2, 3)],
                vec![(0, 1), (2, 3)],
                vec![(0, 1)],
            ],
        )
    }

    fn q(s: u32, d: u32, a: Time, b: Time) -> Query {
        Query::new(ObjectId(s), ObjectId(d), TimeInterval::new(a, b))
    }

    #[test]
    fn figure_1_reachability() {
        let o = oracle();
        // "o4 is reachable from o1 during [0,1]" (o1=0, o4=3).
        assert_eq!(o.evaluate(&q(0, 3, 0, 1)), QueryOutcome::reachable_at(1));
        // "o1 is NOT reachable from o4 during [0,1]".
        assert_eq!(o.evaluate(&q(3, 0, 0, 1)), QueryOutcome::UNREACHABLE);
        // o1 ~[2,3]~> o2 holds directly.
        assert!(o.evaluate(&q(0, 1, 2, 3)).reachable);
        // o4 reaches o1 during [1,3]: o4-o2 at t=1, o2-o1 at t=2.
        assert_eq!(o.evaluate(&q(3, 0, 1, 3)), QueryOutcome::reachable_at(2));
    }

    #[test]
    fn snapshot_closure_spreads_transitively_within_tick() {
        // Chain a-b, b-c, c-d in one tick: item crosses the whole chain.
        let o = Oracle::from_events(4, vec![vec![(0, 1), (1, 2), (2, 3)]]);
        let (inf, when) = o.spread(ObjectId(0), TimeInterval::new(0, 0), None);
        assert!(inf.iter().all(|&b| b));
        assert_eq!(when[3], Some(0));
    }

    #[test]
    fn item_persists_through_silent_gaps() {
        let o = Oracle::from_events(3, vec![vec![(0, 1)], vec![], vec![], vec![(1, 2)]]);
        assert_eq!(o.evaluate(&q(0, 2, 0, 3)), QueryOutcome::reachable_at(3));
        // But not if the window ends before the second contact.
        assert!(!o.evaluate(&q(0, 2, 0, 2)).reachable);
    }

    #[test]
    fn chronology_is_respected() {
        // Contact (1,2) happens before (0,1): no path 0→2.
        let o = Oracle::from_events(3, vec![vec![(1, 2)], vec![(0, 1)]]);
        assert!(!o.evaluate(&q(0, 2, 0, 1)).reachable);
        // Reverse direction works: 2→1 at t=0, then 1→0 at t=1.
        assert!(o.evaluate(&q(2, 0, 0, 1)).reachable);
    }

    #[test]
    fn self_query_is_trivially_reachable() {
        let o = oracle();
        assert_eq!(o.evaluate(&q(2, 2, 1, 3)), QueryOutcome::reachable_at(1));
    }

    #[test]
    fn interval_clipping_beyond_horizon() {
        let o = oracle();
        // Interval extends past the recorded horizon: must not panic, and
        // reachability equals that of the clipped interval.
        assert!(o.evaluate(&q(0, 3, 0, 100)).reachable);
    }

    #[test]
    fn reachable_set_matches_individual_queries() {
        let o = oracle();
        let set = o.reachable_set(ObjectId(0), TimeInterval::new(0, 3));
        for d in 0..4u32 {
            let individual = o.evaluate(&q(0, d, 0, 3)).reachable;
            assert_eq!(set.contains(&ObjectId(d)), individual, "object {d}");
        }
    }

    #[test]
    fn start_tick_matters() {
        let o = oracle();
        // o3 (id 2) reaches o2 (id 1) only via t=1 or t=2 contacts.
        assert!(o.evaluate(&q(2, 1, 1, 1)).reachable);
        assert!(!o.evaluate(&q(2, 1, 3, 3)).reachable);
    }
}
