//! Memory-bounded DN construction: [`StreamedDn`], the spill-backed
//! counterpart of [`DnGraph`](crate::DnGraph).
//!
//! The paper's datasets are "large" precisely because the contact network
//! outgrows memory — yet an index built *from a fully resident `DnGraph`*
//! needs the whole DAG in memory no matter how disk-friendly the index
//! itself is. `StreamedDn` removes that ceiling: it consumes the
//! [`DnEventStream`] like any other sink, but stages sealed nodes and
//! timeline runs in fixed-size segments inside a
//! [`SpillPool`], so the resident decoded bytes
//! never exceed an explicit [`BuildBudget`] — cold segments are written to a
//! scratch device and reloaded on demand (the external-memory design of
//! Brito et al. 2023, PAPERS.md).
//!
//! Because `StreamedDn` implements [`DnAccess`], every consumer of a DN —
//! `partition`, `MultiRes::build`, `ReachGraph::build_on`,
//! `GrailDisk::build_on` — runs on it unchanged and produces **byte-identical
//! on-device pages** to the in-memory path (asserted by
//! `tests/streaming_build.rs`). Spill IO lands on the scratch device's own
//! counters ([`SpillStats`]), strictly separate from the index device's
//! paper-metric IO.

use crate::dag::{assert_contacts_valid, contact_sweep, DnAccess, DnEventStream, DnNode, DnSink};
use reach_core::IndexError;
use reach_core::{Contact, ObjectId, Time, TimeInterval};
use reach_storage::{
    BlockDevice, BuildBudget, ByteReader, ByteWriter, SpillPool, SpillStats, Spillable,
};

/// Hyper nodes per node segment. Small enough that a few segments fit tight
/// budgets, large enough that segment framing stays negligible.
const SEG_NODES: u32 = 64;
/// Objects per timeline segment.
const SEG_OBJECTS: u32 = 64;

/// Pool key of the node segment holding id `v`.
fn node_key(v: u32) -> u64 {
    u64::from(v / SEG_NODES)
}

/// Pool key of the timeline segment holding object `o`.
fn tl_key(o: u32) -> u64 {
    (1u64 << 32) | u64::from(o / SEG_OBJECTS)
}

/// One sealed node as staged in a segment.
#[derive(Clone, Debug, PartialEq)]
struct NodeRec {
    interval: TimeInterval,
    members: Vec<u32>,
    fwd: Vec<u32>,
    rev: Vec<u32>,
}

impl NodeRec {
    fn resident_bytes(&self) -> usize {
        // Deterministic accounting: element bytes plus a fixed per-vec
        // overhead (allocator/container headers). Must not depend on
        // capacities, which vary with growth history.
        8 + 3 * 24 + 4 * (self.members.len() + self.fwd.len() + self.rev.len())
    }
}

/// One spillable segment: a run of node records or of object timelines.
#[derive(Debug)]
enum Seg {
    /// `SEG_NODES` slots of sealed nodes (trailing slots of the last
    /// segment stay empty).
    Nodes(Vec<Option<NodeRec>>),
    /// `SEG_OBJECTS` per-object `(start_tick, node)` run lists.
    Timelines(Vec<Vec<(Time, u32)>>),
}

impl Seg {
    fn empty_nodes() -> Self {
        Seg::Nodes((0..SEG_NODES).map(|_| None).collect())
    }

    fn empty_timelines() -> Self {
        Seg::Timelines((0..SEG_OBJECTS).map(|_| Vec::new()).collect())
    }
}

impl Spillable for Seg {
    fn resident_bytes(&self) -> usize {
        match self {
            Seg::Nodes(slots) => {
                32 + slots.len() * 8
                    + slots
                        .iter()
                        .flatten()
                        .map(NodeRec::resident_bytes)
                        .sum::<usize>()
            }
            Seg::Timelines(tls) => 32 + tls.iter().map(|tl| 24 + 8 * tl.len()).sum::<usize>(),
        }
    }

    fn encode(&self, w: &mut ByteWriter) {
        match self {
            Seg::Nodes(slots) => {
                w.put_u8(0);
                w.put_u32(slots.len() as u32);
                for slot in slots {
                    match slot {
                        None => w.put_u8(0),
                        Some(rec) => {
                            w.put_u8(1);
                            w.put_u32(rec.interval.start);
                            w.put_u32(rec.interval.end);
                            w.put_u32_slice(&rec.members);
                            w.put_u32_slice(&rec.fwd);
                            w.put_u32_slice(&rec.rev);
                        }
                    }
                }
            }
            Seg::Timelines(tls) => {
                w.put_u8(1);
                w.put_u32(tls.len() as u32);
                for tl in tls {
                    w.put_u32(tl.len() as u32);
                    for &(t, node) in tl {
                        w.put_u32(t);
                        w.put_u32(node);
                    }
                }
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, IndexError> {
        match r.get_u8()? {
            0 => {
                let n = r.get_u32()? as usize;
                let mut slots = Vec::with_capacity(n);
                for _ in 0..n {
                    slots.push(match r.get_u8()? {
                        0 => None,
                        _ => {
                            let start = r.get_u32()?;
                            let end = r.get_u32()?;
                            Some(NodeRec {
                                interval: TimeInterval::new(start, end),
                                members: r.get_u32_vec()?,
                                fwd: r.get_u32_vec()?,
                                rev: r.get_u32_vec()?,
                            })
                        }
                    });
                }
                Ok(Seg::Nodes(slots))
            }
            1 => {
                let n = r.get_u32()? as usize;
                let mut tls = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = r.get_u32()? as usize;
                    let mut tl = Vec::with_capacity(k);
                    for _ in 0..k {
                        let t = r.get_u32()?;
                        let node = r.get_u32()?;
                        tl.push((t, node));
                    }
                    tls.push(tl);
                }
                Ok(Seg::Timelines(tls))
            }
            tag => Err(IndexError::Corrupt(format!("unknown segment tag {tag}"))),
        }
    }
}

const SCRATCH_IO: &str = "scratch device IO failed during streamed DN build";

/// The sink staging sealed elements into the pool.
struct SpoolSink<'a> {
    pool: &'a mut SpillPool<Seg>,
    timeline_total: u64,
}

impl DnSink for SpoolSink<'_> {
    fn node(&mut self, id: u32, node: DnNode, fwd: Vec<u32>, rev: Vec<u32>) {
        let rec = NodeRec {
            interval: node.interval,
            members: node.members.iter().map(|m| m.0).collect(),
            fwd,
            rev,
        };
        self.pool
            .update(node_key(id), Seg::empty_nodes, |seg| {
                let Seg::Nodes(slots) = seg else {
                    unreachable!("node key maps to a node segment");
                };
                let slot = &mut slots[(id % SEG_NODES) as usize];
                debug_assert!(slot.is_none(), "node {id} sealed twice");
                *slot = Some(rec);
            })
            .expect(SCRATCH_IO);
    }

    fn timeline_push(&mut self, o: ObjectId, start: Time, node: u32) {
        self.timeline_total += 1;
        self.pool
            .update(tl_key(o.0), Seg::empty_timelines, |seg| {
                let Seg::Timelines(tls) = seg else {
                    unreachable!("timeline key maps to a timeline segment");
                };
                tls[(o.0 % SEG_OBJECTS) as usize].push((start, node));
            })
            .expect(SCRATCH_IO);
    }
}

/// A reduced contact-network DAG whose decoded data lives in a budgeted
/// spill pool instead of resident vectors (see the module docs).
///
/// Build one with [`StreamedDn::build`] (per-tick events) or
/// [`StreamedDn::from_contacts`], then hand it (`&mut`) to any
/// [`DnAccess`] consumer. [`StreamedDn::spill_stats`] reports how much
/// spill IO the budget forced and the peak resident bytes actually used.
#[derive(Debug)]
pub struct StreamedDn {
    pool: SpillPool<Seg>,
    num_objects: usize,
    horizon: Time,
    num_nodes: usize,
    timeline_total: u64,
}

impl StreamedDn {
    /// Builds the DN from a streaming per-tick event callback (the
    /// [`DnGraph::build_streaming`](crate::DnGraph::build_streaming)
    /// contract) under `budget`, spilling to `scratch`.
    ///
    /// The scratch device is wholly owned by the build: pass a fresh
    /// temporary (`SimDevice` reproduces the paper's counted-IO model; a
    /// `FileDevice` makes the bound real). Its page size is independent of
    /// the index device's.
    pub fn build<F>(
        num_objects: usize,
        horizon: Time,
        events: F,
        budget: BuildBudget,
        scratch: Box<dyn BlockDevice>,
    ) -> Self
    where
        F: FnMut(Time, &mut Vec<(u32, u32)>),
    {
        let mut pool = SpillPool::new(scratch, budget);
        let mut sink = SpoolSink {
            pool: &mut pool,
            timeline_total: 0,
        };
        let num_nodes = DnEventStream::new(num_objects, horizon, events).run(&mut sink);
        let timeline_total = sink.timeline_total;
        Self {
            pool,
            num_objects,
            horizon,
            num_nodes,
            timeline_total,
        }
    }

    /// Builds the DN from maximal contact intervals (the event-direct path
    /// ingested traces take) under `budget`.
    ///
    /// # Panics
    ///
    /// Panics on invalid contacts, with the same messages as
    /// [`DnGraph::from_contacts`](crate::DnGraph::from_contacts).
    pub fn from_contacts(
        num_objects: usize,
        horizon: Time,
        contacts: &[Contact],
        budget: BuildBudget,
        scratch: Box<dyn BlockDevice>,
    ) -> Self {
        assert_contacts_valid(num_objects, horizon, contacts);
        Self::build(
            num_objects,
            horizon,
            contact_sweep(contacts),
            budget,
            scratch,
        )
    }

    /// Spill counters: segments spilled/reloaded, scratch page IO, and the
    /// peak resident decoded bytes (the number the budget actually bounds).
    pub fn spill_stats(&self) -> SpillStats {
        self.pool.stats()
    }

    fn with_node<R>(&mut self, v: u32, f: impl FnOnce(&NodeRec) -> R) -> R {
        assert!(
            (v as usize) < self.num_nodes,
            "node {v} out of range ({} nodes)",
            self.num_nodes
        );
        self.pool
            .read(node_key(v), |seg| {
                let Seg::Nodes(slots) = seg else {
                    unreachable!("node key maps to a node segment");
                };
                f(slots[(v % SEG_NODES) as usize]
                    .as_ref()
                    .expect("sealed node present"))
            })
            .expect(SCRATCH_IO)
    }
}

impl DnAccess for StreamedDn {
    fn num_objects(&self) -> usize {
        self.num_objects
    }

    fn horizon(&self) -> Time {
        self.horizon
    }

    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn interval(&mut self, v: u32) -> TimeInterval {
        self.with_node(v, |rec| rec.interval)
    }

    fn members_into(&mut self, v: u32, out: &mut Vec<u32>) {
        self.with_node(v, |rec| {
            out.clear();
            out.extend_from_slice(&rec.members);
        })
    }

    fn fwd_into(&mut self, v: u32, out: &mut Vec<u32>) {
        self.with_node(v, |rec| {
            out.clear();
            out.extend_from_slice(&rec.fwd);
        })
    }

    fn rev_into(&mut self, v: u32, out: &mut Vec<u32>) {
        self.with_node(v, |rec| {
            out.clear();
            out.extend_from_slice(&rec.rev);
        })
    }

    fn timeline_into(&mut self, o: ObjectId, out: &mut Vec<(Time, u32)>) {
        assert!(o.index() < self.num_objects, "object {o} out of range");
        // A zero-horizon world seals nothing, so the segment may not exist:
        // that is an empty timeline, exactly as `DnGraph` reports it.
        if !self.pool.contains(tl_key(o.0)) {
            out.clear();
            return;
        }
        self.pool
            .read(tl_key(o.0), |seg| {
                let Seg::Timelines(tls) = seg else {
                    unreachable!("timeline key maps to a timeline segment");
                };
                out.clear();
                out.extend_from_slice(&tls[(o.0 % SEG_OBJECTS) as usize]);
            })
            .expect(SCRATCH_IO)
    }

    fn timeline_total(&mut self) -> u64 {
        self.timeline_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DnGraph;
    use reach_storage::SimDevice;

    fn scratch() -> Box<dyn BlockDevice> {
        Box::new(SimDevice::new(256))
    }

    fn script_world() -> (usize, Time, Vec<Vec<(u32, u32)>>) {
        // A moderately tangled little world.
        let mut script: Vec<Vec<(u32, u32)>> = vec![Vec::new(); 40];
        script[0] = vec![(0, 1)];
        script[3] = vec![(1, 2), (3, 4)];
        script[4] = vec![(1, 2)];
        script[10] = vec![(0, 4), (2, 3)];
        script[11] = vec![(0, 4)];
        script[25] = vec![(0, 1), (1, 2), (3, 4)];
        (5, 40, script)
    }

    fn assert_access_matches(dn: &DnGraph, sdn: &mut StreamedDn) {
        use crate::dag::DnAccess as _;
        assert_eq!(sdn.num_nodes(), dn.num_nodes());
        assert_eq!(sdn.num_objects(), dn.num_objects());
        assert_eq!(sdn.horizon(), dn.horizon());
        let mut a = Vec::new();
        for v in 0..dn.num_nodes() as u32 {
            assert_eq!(sdn.interval(v), dn.node(v).interval, "interval of {v}");
            sdn.members_into(v, &mut a);
            let expected: Vec<u32> = dn.node(v).members.iter().map(|m| m.0).collect();
            assert_eq!(a, expected, "members of {v}");
            sdn.fwd_into(v, &mut a);
            assert_eq!(a.as_slice(), dn.fwd(v), "fwd of {v}");
            sdn.rev_into(v, &mut a);
            assert_eq!(a.as_slice(), dn.rev(v), "rev of {v}");
        }
        let mut ta = Vec::new();
        for o in 0..dn.num_objects() as u32 {
            sdn.timeline_into(ObjectId(o), &mut ta);
            assert_eq!(ta.as_slice(), dn.timeline(ObjectId(o)), "timeline of {o}");
        }
        let expected_total: u64 = (0..dn.num_objects() as u32)
            .map(|o| dn.timeline(ObjectId(o)).len() as u64)
            .sum();
        assert_eq!(sdn.timeline_total(), expected_total);
    }

    #[test]
    fn streamed_matches_in_memory_unbounded() {
        let (n, h, script) = script_world();
        let dn = DnGraph::build_from_ticks(n, h, |t| script[t as usize].as_slice());
        let mut sdn = StreamedDn::build(
            n,
            h,
            |t, buf| buf.extend_from_slice(&script[t as usize]),
            BuildBudget::unbounded(),
            scratch(),
        );
        assert_access_matches(&dn, &mut sdn);
        let s = sdn.spill_stats();
        assert_eq!((s.spilled, s.reloaded), (0, 0));
    }

    #[test]
    fn tight_budget_spills_but_data_is_identical() {
        let (n, h, script) = script_world();
        let dn = DnGraph::build_from_ticks(n, h, |t| script[t as usize].as_slice());
        let mut sdn = StreamedDn::build(
            n,
            h,
            |t, buf| buf.extend_from_slice(&script[t as usize]),
            BuildBudget::bytes(1024),
            scratch(),
        );
        assert_access_matches(&dn, &mut sdn);
        let s = sdn.spill_stats();
        assert!(s.spilled > 0, "1 KiB budget must spill ({s:?})");
        assert!(s.reloaded > 0, "verification reads must reload ({s:?})");
        assert!(s.io.total_writes() > 0 && s.io.total_reads() > 0);
        assert!(s.peak_resident_bytes <= 1024 + 4096, "budget roughly held");
    }

    #[test]
    fn from_contacts_matches_dngraph_from_contacts() {
        let c = |a: u32, b: u32, s: Time, e: Time| {
            Contact::new(ObjectId(a), ObjectId(b), TimeInterval::new(s, e))
        };
        let contacts = vec![c(0, 1, 0, 3), c(1, 2, 2, 5), c(3, 4, 1, 1), c(0, 4, 8, 9)];
        let dn = DnGraph::from_contacts(6, 12, &contacts);
        let mut sdn =
            StreamedDn::from_contacts(6, 12, &contacts, BuildBudget::bytes(512), scratch());
        assert_access_matches(&dn, &mut sdn);
    }

    #[test]
    #[should_panic(expected = "outside the universe")]
    fn from_contacts_validates_like_dngraph() {
        let c = Contact::new(ObjectId(0), ObjectId(9), TimeInterval::new(0, 0));
        let _ = StreamedDn::from_contacts(2, 4, &[c], BuildBudget::unbounded(), scratch());
    }

    #[test]
    fn empty_world_has_no_segments() {
        let mut sdn = StreamedDn::build(0, 0, |_, _| {}, BuildBudget::unbounded(), scratch());
        assert_eq!(DnAccess::num_nodes(&sdn), 0);
        assert_eq!(sdn.timeline_total(), 0);
    }

    #[test]
    fn zero_horizon_world_reports_empty_timelines() {
        // horizon == 0 with objects: nothing is sealed, so no timeline
        // segments exist — accessors must report empty, matching DnGraph.
        let dn = DnGraph::build_from_ticks(3, 0, |_| &[]);
        let mut sdn = StreamedDn::build(3, 0, |_, _| {}, BuildBudget::unbounded(), scratch());
        assert_eq!(DnAccess::num_nodes(&sdn), 0);
        let mut tl = vec![(7, 7)];
        for o in 0..3u32 {
            sdn.timeline_into(ObjectId(o), &mut tl);
            assert_eq!(tl.as_slice(), dn.timeline(ObjectId(o)), "timeline of {o}");
            assert!(tl.is_empty());
        }
    }
}
