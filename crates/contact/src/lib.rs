//! # reach-contact
//!
//! Contact-network substrate: everything between raw contact data — joined
//! trajectories *or* ingested contact traces — and the two disk indexes.
//!
//! ## Crate map
//!
//! | module | paper § | contents |
//! |---|---|---|
//! | [`extract`] | §4 | spatiotemporal join → contact events / contacts |
//! | [`ingest`] | §3.1 (data model) | contact-trace loaders, format contract, trace writers, ReachGrid embedding |
//! | [`dag`] | §5.1.2 | the reduced contact-network DAG `DN`, built run-merged from ticks, streams, or contacts |
//! | [`dag_stream`] | §5.1.2 | [`StreamedDn`]: the same DAG staged in a budgeted spill pool, for builds larger than memory |
//! | [`multires`] | §5.1.2.2 | the multi-resolution long edges of `HN` |
//! | [`oracle`] | §3.2 (definition 3.4) | brute-force ground truth every index is tested against |
//! | [`stats`] | §6.2.1.1 | TEN-vs-DN reduction statistics |
//!
//! Two roads lead into the contact network:
//!
//! 1. **Trajectories** (the paper's §4 pipeline): a
//!    [`TrajectoryStore`](reach_traj::TrajectoryStore) is self-joined by
//!    [`extract`] and reduced by [`dag`];
//! 2. **Contact traces** (real datasets; see `DATAFORMATS.md`): [`ingest`]
//!    parses timestamped edge lists or interval records into a
//!    [`ContactTrace`], and [`DnGraph::from_contacts`] builds the identical
//!    DAG event-directly — no trajectories, no spatial join.
//!
//! Everything downstream (multi-resolution bundles, indexes, oracle) is
//! agnostic to which road was taken.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dag;
pub mod dag_stream;
pub mod extract;
pub mod ingest;
pub mod multires;
pub mod oracle;
pub mod stats;

pub use dag::{
    chain_contacts, contact_sweep, ChainSweep, Csr, DnAccess, DnEventStream, DnGraph, DnNode,
    DnSink, GraphSize,
};
pub use dag_stream::StreamedDn;
pub use extract::{count_events, events_by_tick, extract_contacts, extract_events, EventCounts};
pub use ingest::{
    ContactSource, ContactTrace, EdgeListSource, ErrorMode, IngestError, IngestOptions,
    IntervalSource, TraceKind,
};
pub use multires::{hold_set_dn1, launch_boundary, MultiRes, DEFAULT_LEVELS};
pub use oracle::Oracle;
pub use stats::{reduction_stats, reduction_stats_for, ReductionStats};
