//! # reach-contact
//!
//! Contact-network substrate: everything between raw trajectories and the
//! two disk indexes.
//!
//! * [`extract`] — spatiotemporal join → contact events / contacts;
//! * [`dag`] — the reduced contact-network DAG `DN` (paper §5.1.2), built in
//!   run-merged form with per-object timelines;
//! * [`multires`] — the multi-resolution long edges of `HN` (§5.1.2.2);
//! * [`oracle`] — brute-force ground truth every index is tested against;
//! * [`stats`] — TEN-vs-DN reduction statistics (§6.2.1.1).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dag;
pub mod extract;
pub mod multires;
pub mod oracle;
pub mod stats;

pub use dag::{Csr, DnGraph, DnNode, GraphSize};
pub use extract::{count_events, events_by_tick, extract_contacts, extract_events, EventCounts};
pub use multires::{hold_set_dn1, launch_boundary, MultiRes, DEFAULT_LEVELS};
pub use oracle::Oracle;
pub use stats::{reduction_stats, reduction_stats_for, ReductionStats};
