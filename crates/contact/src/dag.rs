//! The reduced contact-network DAG `DN` (paper §5.1.2, reduction phase).
//!
//! Starting from the TEN model of the contact network, the paper applies two
//! lossless reductions:
//!
//! 1. per-snapshot connected components become single hyper nodes
//!    (properties 5.1/5.2: members of one component at one instant are
//!    mutually reachable);
//! 2. identical components in consecutive snapshots are merged, with
//!    aggregated edges `e(n)` carrying the skipped span.
//!
//! We represent the result directly in merged form: every [`DnNode`] is the
//! *maximal run* of consecutive ticks during which one exact member set is a
//! connected component, carrying a validity interval `[start, end]`. A DN1
//! edge `u → v` exists iff `v.start == u.end + 1` and the nodes share an
//! object; the aggregated-edge weight of the paper is the interval length.
//!
//! Central invariant (used throughout the workspace, from multi-resolution
//! construction to BM-BFS): **a node's member set is frozen for its whole
//! interval, so an item inside the node cannot spread beyond its members
//! until the node dies**. Items disperse only across DN1 edges at
//! `end + 1`.
//!
//! Three constructors build the same DAG from different inputs:
//! [`DnGraph::build`] (trajectories, via the §4 join),
//! [`DnGraph::build_from_ticks`]/[`DnGraph::build_streaming`] (per-tick
//! event lists), and [`DnGraph::from_contacts`] (maximal contact intervals,
//! the event-direct path ingested traces take — see [`crate::ingest`]).
//! All three run on one engine: [`DnEventStream`], which seals each hyper
//! node the moment its run closes and hands it to a [`DnSink`] — the
//! in-memory `DnGraph` is merely the sink that keeps everything
//! ([`crate::StreamedDn`] is the sink that doesn't). Consumers that only
//! need *read* access to a DN — index construction, partitioning,
//! multi-resolution bundles — go through the [`DnAccess`] trait, so they
//! work identically on a resident `DnGraph` and a spill-backed
//! [`crate::StreamedDn`].

use reach_core::{Contact, NodeId, ObjectId, Time, TimeInterval, UnionFind};
use reach_traj::TrajectoryStore;
use std::collections::HashMap;

/// A hyper node of `DN`: one connected component over a maximal run of
/// ticks.
#[derive(Clone, Debug, PartialEq)]
pub struct DnNode {
    /// Validity interval of the component.
    pub interval: TimeInterval,
    /// Sorted member objects (frozen over the whole interval).
    pub members: Vec<ObjectId>,
}

impl DnNode {
    /// Whether the node is alive at tick `t`.
    #[inline]
    pub fn alive_at(&self, t: Time) -> bool {
        self.interval.contains(t)
    }

    /// Whether `o` belongs to this component.
    #[inline]
    pub fn contains(&self, o: ObjectId) -> bool {
        self.members.binary_search(&o).is_ok()
    }
}

/// Compressed sparse row adjacency.
#[derive(Clone, Debug, Default)]
pub struct Csr {
    offsets: Vec<u64>,
    targets: Vec<u32>,
}

impl Csr {
    /// Builds a CSR from `(src, dst)` pairs over `n` nodes.
    pub fn from_pairs(n: usize, mut pairs: Vec<(u32, u32)>) -> Self {
        pairs.sort_unstable();
        pairs.dedup();
        let mut offsets = vec![0u64; n + 1];
        for &(s, _) in &pairs {
            offsets[s as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets = pairs.into_iter().map(|(_, d)| d).collect();
        Self { offsets, targets }
    }

    /// Builds a CSR from per-node target lists.
    pub fn from_lists(lists: &[Vec<u32>]) -> Self {
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        offsets.push(0u64);
        let mut targets = Vec::new();
        for l in lists {
            targets.extend_from_slice(l);
            offsets.push(targets.len() as u64);
        }
        Self { offsets, targets }
    }

    /// Out-neighbors of node `n`.
    #[inline]
    pub fn out(&self, n: u32) -> &[u32] {
        let lo = self.offsets[n as usize] as usize;
        let hi = self.offsets[n as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Total number of stored edges.
    pub fn num_edges(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Number of source slots.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }
}

/// Size statistics of a `DN` (Figure 10) or TEN (§6.2.1.1) graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphSize {
    /// Vertex count.
    pub vertices: u64,
    /// Edge count.
    pub edges: u64,
}

/// The reduced contact-network DAG.
#[derive(Clone, Debug)]
pub struct DnGraph {
    nodes: Vec<DnNode>,
    fwd: Csr,
    rev: Csr,
    /// Per object: `(start_tick, node)` runs, sorted by start tick.
    timelines: Vec<Vec<(Time, u32)>>,
    num_objects: usize,
    horizon: Time,
}

impl DnGraph {
    /// Builds the DN of `store`'s contact network with contact threshold
    /// `threshold` over the full horizon.
    pub fn build(store: &TrajectoryStore, threshold: reach_core::Coord) -> Self {
        let horizon = store.horizon();
        let per_tick = crate::extract::events_by_tick(store, store.horizon_interval(), threshold);
        let events = |t: Time| -> &[(u32, u32)] {
            per_tick.get(t as usize).map(Vec::as_slice).unwrap_or(&[])
        };
        Self::build_from_ticks(store.num_objects(), horizon, events)
    }

    /// Builds the DN from per-tick contact pairs: `events(t)` returns the
    /// normalized pairs in contact at tick `t` (`0 ≤ t < horizon`).
    pub fn build_from_ticks<'a, F>(num_objects: usize, horizon: Time, events: F) -> Self
    where
        F: Fn(Time) -> &'a [(u32, u32)],
    {
        Self::build_streaming(num_objects, horizon, move |t, buf| {
            buf.extend_from_slice(events(t))
        })
    }

    /// Builds the DN from a streaming per-tick event callback: `events` is
    /// called once per tick in ascending order and fills `buf` with the pairs
    /// in contact at that tick (`a != b`, any order, duplicates allowed).
    ///
    /// This is the event-direct construction path: nothing about the input
    /// needs to exist in memory up front, so contact-trace loaders can feed
    /// the builder without materializing a per-tick event table (let alone a
    /// `TrajectoryStore` and the spatial join behind [`DnGraph::build`]).
    pub fn build_streaming<F>(num_objects: usize, horizon: Time, events: F) -> Self
    where
        F: FnMut(Time, &mut Vec<(u32, u32)>),
    {
        let mut sink = CollectSink::new(num_objects);
        let n = DnEventStream::new(num_objects, horizon, events).run(&mut sink);
        sink.finish(n, num_objects, horizon)
    }

    /// Builds the DN directly from maximal-interval [`Contact`]s — the form
    /// real contact traces arrive in (see [`crate::ingest`]) — without a
    /// trajectory store or spatial join.
    ///
    /// The contacts may be in any order; each is expanded into its per-tick
    /// events by an interval sweep, so the cost is `O(|C| log |C| +
    /// Σ_c |T_c|)`, the same as feeding the equivalent instantaneous event
    /// stream. The result is identical to [`DnGraph::build`] on any
    /// trajectory dataset whose extracted contact network equals `contacts`
    /// (asserted by the ingestion round-trip tests).
    ///
    /// # Panics
    ///
    /// Panics if a contact references an object `≥ num_objects`, lies beyond
    /// `horizon`, or is a self-contact. [`crate::ingest::ContactTrace`]
    /// guarantees these invariants for loaded traces.
    pub fn from_contacts(num_objects: usize, horizon: Time, contacts: &[Contact]) -> Self {
        assert_contacts_valid(num_objects, horizon, contacts);
        Self::build_streaming(num_objects, horizon, contact_sweep(contacts))
    }

    /// Number of hyper nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Node accessor.
    #[inline]
    pub fn node(&self, n: u32) -> &DnNode {
        &self.nodes[n as usize]
    }

    /// All nodes, id = slot.
    pub fn nodes(&self) -> &[DnNode] {
        &self.nodes
    }

    /// DN1 out-edges of `n` (successor components at `end + 1`).
    #[inline]
    pub fn fwd(&self, n: u32) -> &[u32] {
        self.fwd.out(n)
    }

    /// DN1 in-edges of `n` (predecessor components at `start - 1`).
    #[inline]
    pub fn rev(&self, n: u32) -> &[u32] {
        self.rev.out(n)
    }

    /// Number of objects in the dataset.
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// Horizon in ticks.
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// The node containing `o` at tick `t` (the role of the paper's `Ht`
    /// hash tables). Panics if `o`/`t` are out of range.
    pub fn node_of(&self, o: ObjectId, t: Time) -> NodeId {
        let tl = &self.timelines[o.index()];
        let idx = tl.partition_point(|&(s, _)| s <= t) - 1;
        NodeId(tl[idx].1)
    }

    /// Per-object timeline: `(start_tick, node)` runs sorted by tick.
    pub fn timeline(&self, o: ObjectId) -> &[(Time, u32)] {
        &self.timelines[o.index()]
    }

    /// Vertex/edge counts of the reduced DAG (Figure 10).
    pub fn size(&self) -> GraphSize {
        GraphSize {
            vertices: self.nodes.len() as u64,
            edges: self.fwd.num_edges(),
        }
    }

    /// Vertex/edge counts of the unreduced TEN for the same dataset:
    /// `|O|·|T|` vertices, `|O|·(|T|-1)` hold edges plus one edge per
    /// instantaneous contact (§5.1.1).
    pub fn ten_size(num_objects: usize, horizon: Time, total_events: u64) -> GraphSize {
        let o = num_objects as u64;
        let t = u64::from(horizon);
        GraphSize {
            vertices: o * t,
            edges: o * t.saturating_sub(1) + total_events,
        }
    }

    /// Checks every structural invariant; returns a description of the first
    /// violation. Used by tests and debug assertions, not on hot paths.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.nodes.len();
        // Node-local invariants.
        for (i, node) in self.nodes.iter().enumerate() {
            if node.members.is_empty() {
                return Err(format!("node {i} has no members"));
            }
            if node.members.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("node {i} members not strictly sorted"));
            }
            if node.interval.end >= self.horizon {
                return Err(format!(
                    "node {i} interval {} beyond horizon",
                    node.interval
                ));
            }
        }
        // Edge invariants: adjacency in time + shared member.
        for u in 0..n as u32 {
            for &v in self.fwd.out(u) {
                let nu = &self.nodes[u as usize];
                let nv = &self.nodes[v as usize];
                if !nu.interval.abuts(&nv.interval) {
                    return Err(format!("edge {u}->{v} not temporally adjacent"));
                }
                if !nu.members.iter().any(|m| nv.contains(*m)) {
                    return Err(format!("edge {u}->{v} shares no member"));
                }
            }
        }
        // Every non-final node must have successors covering all members;
        // every tick must partition the object set.
        let mut membership = vec![0u64; self.num_objects];
        for t in 0..self.horizon {
            membership.iter_mut().for_each(|m| *m = 0);
            for (i, node) in self.nodes.iter().enumerate() {
                if node.alive_at(t) {
                    for m in &node.members {
                        membership[m.index()] += 1;
                        let _ = i;
                    }
                }
            }
            if membership.iter().any(|&c| c != 1) {
                return Err(format!("tick {t}: nodes do not partition the objects"));
            }
        }
        // Timeline consistency.
        for o in 0..self.num_objects as u32 {
            let o = ObjectId(o);
            for t in 0..self.horizon {
                let nid = self.node_of(o, t);
                let node = self.node(nid.0);
                if !node.alive_at(t) || !node.contains(o) {
                    return Err(format!("timeline of {o} wrong at tick {t}"));
                }
            }
        }
        // Reverse graph mirrors forward graph.
        let mut fwd_pairs: Vec<(u32, u32)> = Vec::new();
        for u in 0..n as u32 {
            for &v in self.fwd.out(u) {
                fwd_pairs.push((u, v));
            }
        }
        let mut rev_pairs: Vec<(u32, u32)> = Vec::new();
        for v in 0..n as u32 {
            for &u in self.rev.out(v) {
                rev_pairs.push((u, v));
            }
        }
        fwd_pairs.sort_unstable();
        rev_pairs.sort_unstable();
        if fwd_pairs != rev_pairs {
            return Err("reverse graph is not the mirror of the forward graph".into());
        }
        Ok(())
    }
}

/// Read access to a reduced contact-network DAG, for consumers that build
/// things *from* a DN — disk placement, multi-resolution bundles, index
/// serialization.
///
/// The trait exists so those consumers run unchanged — and produce
/// byte-identical output — whether the DN is a resident [`DnGraph`] or a
/// spill-backed [`crate::StreamedDn`] whose decoded segments come and go
/// under a memory budget. That is also why the accessors take `&mut self`
/// and fill caller-provided buffers instead of returning slices: a
/// spill-backed implementation may have to evict and reload segments on
/// every call, so it cannot hand out long-lived borrows.
///
/// Accessor calls on a spill-backed implementation may perform scratch IO;
/// scratch-device failure (e.g. a full temp filesystem) panics — there is
/// no meaningful way to resume a half-built index, and threading `Result`
/// through every graph traversal would tax the common in-memory case for an
/// unrecoverable condition.
///
/// `&DnGraph` implements the trait (so existing `build(&dn, …)` call sites
/// compile unchanged), as does `&mut T` for any implementor (so one
/// [`crate::StreamedDn`] can feed several consumers in sequence).
pub trait DnAccess {
    /// Number of objects in the dataset.
    fn num_objects(&self) -> usize;
    /// Horizon in ticks.
    fn horizon(&self) -> Time;
    /// Number of hyper nodes.
    fn num_nodes(&self) -> usize;
    /// Validity interval of node `v`.
    fn interval(&mut self, v: u32) -> TimeInterval;
    /// Replaces `out` with the sorted member objects of node `v`.
    fn members_into(&mut self, v: u32, out: &mut Vec<u32>);
    /// Replaces `out` with the sorted DN1 out-edges of node `v`.
    fn fwd_into(&mut self, v: u32, out: &mut Vec<u32>);
    /// Replaces `out` with the sorted DN1 in-edges of node `v`.
    fn rev_into(&mut self, v: u32, out: &mut Vec<u32>);
    /// Replaces `out` with object `o`'s `(start_tick, node)` runs, ascending.
    fn timeline_into(&mut self, o: ObjectId, out: &mut Vec<(Time, u32)>);
    /// Total timeline entries over all objects (Σ per-node member counts);
    /// lets writers size the on-device timeline region without a dry run.
    fn timeline_total(&mut self) -> u64;
}

impl DnAccess for &DnGraph {
    fn num_objects(&self) -> usize {
        DnGraph::num_objects(self)
    }

    fn horizon(&self) -> Time {
        DnGraph::horizon(self)
    }

    fn num_nodes(&self) -> usize {
        DnGraph::num_nodes(self)
    }

    fn interval(&mut self, v: u32) -> TimeInterval {
        self.node(v).interval
    }

    fn members_into(&mut self, v: u32, out: &mut Vec<u32>) {
        out.clear();
        out.extend(self.node(v).members.iter().map(|m| m.0));
    }

    fn fwd_into(&mut self, v: u32, out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(self.fwd(v));
    }

    fn rev_into(&mut self, v: u32, out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(self.rev(v));
    }

    fn timeline_into(&mut self, o: ObjectId, out: &mut Vec<(Time, u32)>) {
        out.clear();
        out.extend_from_slice(self.timeline(o));
    }

    fn timeline_total(&mut self) -> u64 {
        self.timelines.iter().map(|tl| tl.len() as u64).sum()
    }
}

impl<T: DnAccess> DnAccess for &mut T {
    fn num_objects(&self) -> usize {
        (**self).num_objects()
    }

    fn horizon(&self) -> Time {
        (**self).horizon()
    }

    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }

    fn interval(&mut self, v: u32) -> TimeInterval {
        (**self).interval(v)
    }

    fn members_into(&mut self, v: u32, out: &mut Vec<u32>) {
        (**self).members_into(v, out)
    }

    fn fwd_into(&mut self, v: u32, out: &mut Vec<u32>) {
        (**self).fwd_into(v, out)
    }

    fn rev_into(&mut self, v: u32, out: &mut Vec<u32>) {
        (**self).rev_into(v, out)
    }

    fn timeline_into(&mut self, o: ObjectId, out: &mut Vec<(Time, u32)>) {
        (**self).timeline_into(o, out)
    }

    fn timeline_total(&mut self) -> u64 {
        (**self).timeline_total()
    }
}

/// Receives the elements of a DN as the streaming construction seals them.
///
/// [`DnEventStream`] emits every hyper node exactly once, the moment its run
/// closes (so in ascending *end*-tick order; ascending id within one tick)
/// with its complete, sorted, deduplicated DN1 adjacency. Ids are dense
/// `0..n` in interval-*start* (topological) order, exactly as [`DnGraph`]
/// assigns them. Timeline entries of one object arrive in ascending tick
/// order, interleaved across objects.
///
/// Implementors decide what stays in memory: the `DnGraph` constructors use
/// a sink that keeps everything; [`crate::StreamedDn`] stages segments in a
/// spillable pool so the whole DN never has to be resident at once.
pub trait DnSink {
    /// One sealed hyper node with its complete DN1 adjacency (both lists
    /// sorted, deduplicated).
    fn node(&mut self, id: u32, node: DnNode, fwd: Vec<u32>, rev: Vec<u32>);

    /// One `(start_tick, node)` run of object `o`'s timeline.
    fn timeline_push(&mut self, o: ObjectId, start: Time, node: u32);
}

/// The streaming DN construction engine (ROADMAP "stream index
/// construction"; cf. Brito et al. 2023, PAPERS.md).
///
/// Drives the per-tick run-tracking reduction of §5.1.2 while holding only
/// the *open* runs — whose member sets partition the object universe, so
/// resident state is `O(|O|)` plus the current tick's events, independent of
/// the horizon and of the final DAG size. Every sealed node is handed to a
/// [`DnSink`] and forgotten.
///
/// [`DnGraph::build_streaming`] is this engine with an all-collecting sink;
/// the two paths produce bit-identical DAGs (asserted by the streaming
/// tier-1 suite).
pub struct DnEventStream<F> {
    num_objects: usize,
    horizon: Time,
    events: F,
}

impl<F> DnEventStream<F>
where
    F: FnMut(Time, &mut Vec<(u32, u32)>),
{
    /// A stream over a per-tick event callback: `events` is called once per
    /// tick in ascending order and fills the buffer with the pairs in
    /// contact at that tick (`a != b`, any order, duplicates allowed).
    pub fn new(num_objects: usize, horizon: Time, events: F) -> Self {
        Self {
            num_objects,
            horizon,
            events,
        }
    }

    /// Runs the reduction to completion, feeding `sink`; returns the number
    /// of hyper nodes sealed.
    pub fn run(self, sink: &mut impl DnSink) -> usize {
        Builder::new(self.num_objects, self.horizon, sink).run(self.events)
    }
}

/// The interval sweep turning maximal [`Contact`]s into the per-tick event
/// callback [`DnEventStream`] consumes: activate contacts at their start
/// tick, emit every active pair each tick, retire contacts past their end.
/// Contacts may be in any order; cost is `O(|C| log |C| + Σ_c |T_c|)`.
pub fn contact_sweep(contacts: &[Contact]) -> impl FnMut(Time, &mut Vec<(u32, u32)>) + '_ {
    let mut order: Vec<usize> = (0..contacts.len()).collect();
    order.sort_unstable_by_key(|&i| contacts[i].interval.start);
    let mut next = 0usize;
    let mut active: Vec<usize> = Vec::new();
    move |t, buf| {
        while next < order.len() && contacts[order[next]].interval.start == t {
            active.push(order[next]);
            next += 1;
        }
        active.retain(|&i| {
            let c = &contacts[i];
            if c.interval.end < t {
                return false;
            }
            buf.push((c.a.0, c.b.0));
            true
        });
    }
}

/// Extracts a *component-chain* contact set from a reduced DAG: for every
/// multi-member hyper node `{m_0 < m_1 < … < m_k}@[s, e]`, the chain
/// contacts `(m_0, m_1)@[s, e], …, (m_{k-1}, m_k)@[s, e]`.
///
/// The chain set is a lossless summary of the DN in the only sense DN
/// construction cares about: at every tick its pairwise events induce
/// **exactly the same connected components** as the original contact
/// network's, so rebuilding through [`DnGraph::from_contacts`] (or
/// [`crate::StreamedDn::from_contacts`]) reproduces the identical DAG —
/// same nodes, ids, edges, and timelines. Because per-tick components of a
/// union depend on each part only through its partition, the chains can
/// also be **merged with later events**: building over
/// `chain_contacts(dn) ∪ Δ` equals building over `original ∪ Δ` for any
/// event set `Δ`. That is the algebra live watermark compaction runs on — a
/// sealed index re-streams its DN as chains and merges the delta through
/// the ordinary streaming builders (cf. Brito et al. 2021, PAPERS.md).
///
/// Size: one contact per adjacent member pair per node, i.e. `Σ_v (|v| - 1)`
/// — never more than the node member total the DN already stores. Output
/// order is node-id (topological) order; consumers that need the canonical
/// `(start, a, b)` order must sort, but every `from_contacts` path accepts
/// arbitrary order.
pub fn chain_contacts<D: DnAccess>(mut dn: D) -> Vec<Contact> {
    let mut out = Vec::new();
    let mut members: Vec<u32> = Vec::new();
    for v in 0..dn.num_nodes() as u32 {
        dn.members_into(v, &mut members);
        if members.len() < 2 {
            continue;
        }
        let interval = dn.interval(v);
        for w in members.windows(2) {
            out.push(Contact::new(ObjectId(w[0]), ObjectId(w[1]), interval));
        }
    }
    out
}

/// Streams a DN's component-chain events tick by tick — the memory-bounded
/// counterpart of [`chain_contacts`].
///
/// Where `chain_contacts` materializes every chain contact up front (fine
/// for resident-scale DNs, fatal for the larger-than-memory case the
/// streaming builders exist for), `ChainSweep` activates nodes in id order
/// (ids are start-sorted) and keeps only the *open* multi-member
/// components resident — `O(|O|)`, the same bound as the DN construction
/// sweep itself. Drive it like any per-tick event callback: call
/// [`ChainSweep::emit`] once per tick, ascending from 0; the emitted pairs
/// have exactly the original trace's per-tick connected components, so
/// feeding them (optionally unioned with newer events) into the streaming
/// builders reproduces the batch-built index byte for byte.
pub struct ChainSweep<D: DnAccess> {
    dn: D,
    num_nodes: usize,
    next: u32,
    /// Interval of node `next`, if already fetched (avoids re-reading the
    /// record on every silent tick).
    pending: Option<TimeInterval>,
    /// Open multi-member components: `(end_tick, members)`.
    active: Vec<(Time, Vec<u32>)>,
    chains: u64,
}

impl<D: DnAccess> ChainSweep<D> {
    /// A sweep over `dn`, positioned before tick 0.
    pub fn new(dn: D) -> Self {
        let num_nodes = dn.num_nodes();
        Self {
            dn,
            num_nodes,
            next: 0,
            pending: None,
            active: Vec::new(),
            chains: 0,
        }
    }

    /// Appends tick `t`'s chain pairs to `buf`. Ticks must be visited in
    /// ascending order starting at 0 (the `DnEventStream` contract).
    pub fn emit(&mut self, t: Time, buf: &mut Vec<(u32, u32)>) {
        loop {
            let iv = match self.pending {
                Some(iv) => iv,
                None => {
                    if self.next as usize >= self.num_nodes {
                        break;
                    }
                    let iv = self.dn.interval(self.next);
                    self.pending = Some(iv);
                    iv
                }
            };
            if iv.start > t {
                break;
            }
            self.pending = None;
            let mut members = Vec::new();
            self.dn.members_into(self.next, &mut members);
            self.next += 1;
            if members.len() >= 2 {
                self.chains += members.len() as u64 - 1;
                self.active.push((iv.end, members));
            }
        }
        self.active.retain(|(end, members)| {
            if *end < t {
                return false;
            }
            for w in members.windows(2) {
                buf.push((w[0], w[1]));
            }
            true
        });
    }

    /// Distinct chain contacts streamed so far (`Σ_v (|v| - 1)` over the
    /// activated multi-member nodes) — the count [`chain_contacts`] would
    /// have materialized.
    pub fn chains(&self) -> u64 {
        self.chains
    }
}

/// The [`DnGraph::from_contacts`] input contract, shared with
/// [`crate::StreamedDn::from_contacts`].
///
/// # Panics
///
/// Panics if a contact references an object `≥ num_objects`, lies beyond
/// `horizon`, or is a self-contact.
pub(crate) fn assert_contacts_valid(num_objects: usize, horizon: Time, contacts: &[Contact]) {
    for c in contacts {
        assert!(
            c.a.index() < num_objects && c.b.index() < num_objects,
            "contact {c:?} references an object outside the universe of {num_objects}"
        );
        assert!(
            c.interval.end < horizon,
            "contact {c:?} extends beyond the horizon {horizon}"
        );
        // Contact::new forbids a == b, but the fields are public.
        assert!(c.a != c.b, "self-contact {c:?}");
    }
}

/// The sink behind the in-memory constructors: keeps every sealed node.
struct CollectSink {
    nodes: Vec<Option<DnNode>>,
    fwd: Vec<Vec<u32>>,
    rev: Vec<Vec<u32>>,
    timelines: Vec<Vec<(Time, u32)>>,
}

impl CollectSink {
    fn new(num_objects: usize) -> Self {
        Self {
            nodes: Vec::new(),
            fwd: Vec::new(),
            rev: Vec::new(),
            timelines: vec![Vec::new(); num_objects],
        }
    }

    fn finish(self, num_nodes: usize, num_objects: usize, horizon: Time) -> DnGraph {
        debug_assert_eq!(self.nodes.len(), num_nodes);
        DnGraph {
            nodes: self
                .nodes
                .into_iter()
                .map(|n| n.expect("every dense id is sealed exactly once"))
                .collect(),
            fwd: Csr::from_lists(&self.fwd),
            rev: Csr::from_lists(&self.rev),
            timelines: self.timelines,
            num_objects,
            horizon,
        }
    }
}

impl DnSink for CollectSink {
    fn node(&mut self, id: u32, node: DnNode, fwd: Vec<u32>, rev: Vec<u32>) {
        let i = id as usize;
        if self.nodes.len() <= i {
            self.nodes.resize_with(i + 1, || None);
            self.fwd.resize_with(i + 1, Vec::new);
            self.rev.resize_with(i + 1, Vec::new);
        }
        self.nodes[i] = Some(node);
        self.fwd[i] = fwd;
        self.rev[i] = rev;
    }

    fn timeline_push(&mut self, o: ObjectId, start: Time, node: u32) {
        self.timelines[o.index()].push((start, node));
    }
}

/// One still-open run: its start tick, frozen member set, and the
/// (complete-at-open) DN1 in-edges.
struct OpenRun {
    start: Time,
    members: Vec<ObjectId>,
    rev: Vec<u32>,
}

/// Incremental run-tracking builder over a sink. Resident state is the open
/// runs only — their member sets partition the objects, so this is `O(|O|)`
/// regardless of horizon or output size.
struct Builder<'s, S: DnSink> {
    sink: &'s mut S,
    num_objects: usize,
    horizon: Time,
    next_id: u32,
    sealed: usize,
    /// Open run data by node id.
    open: HashMap<u32, OpenRun>,
    /// Open run (node id) of each object.
    run_of: Vec<u32>,
    /// Open runs with ≥ 2 members (they must close on a silent tick).
    multi_open: HashMap<u32, ()>,
    uf: UnionFind,
}

impl<'s, S: DnSink> Builder<'s, S> {
    fn new(num_objects: usize, horizon: Time, sink: &'s mut S) -> Self {
        Self {
            sink,
            num_objects,
            horizon,
            next_id: 0,
            sealed: 0,
            open: HashMap::with_capacity(num_objects.min(1 << 16)),
            run_of: vec![u32::MAX; num_objects],
            multi_open: HashMap::new(),
            uf: UnionFind::new(num_objects),
        }
    }

    fn run<F>(mut self, mut events: F) -> usize
    where
        F: FnMut(Time, &mut Vec<(u32, u32)>),
    {
        if self.num_objects == 0 || self.horizon == 0 {
            return 0;
        }
        let mut buf: Vec<(u32, u32)> = Vec::new();
        events(0, &mut buf);
        self.initial_tick(&buf);
        for t in 1..self.horizon {
            buf.clear();
            events(t, &mut buf);
            if buf.is_empty() && self.multi_open.is_empty() {
                continue; // nothing can change
            }
            self.step(t, &buf);
        }
        // Seal every run still open at the horizon (no out-edges).
        let horizon = self.horizon;
        let mut remaining: Vec<u32> = self.open.keys().copied().collect();
        remaining.sort_unstable();
        for id in remaining {
            let run = self.open.remove(&id).expect("run is open");
            self.seal(id, run, horizon - 1, Vec::new());
        }
        self.sealed
    }

    /// Emits one finished node to the sink.
    fn seal(&mut self, id: u32, run: OpenRun, end: Time, mut fwd: Vec<u32>) {
        // Out-edges were recorded in ascending-target order; keep the
        // canonical CSR row shape explicit regardless.
        fwd.sort_unstable();
        fwd.dedup();
        self.sealed += 1;
        self.sink.node(
            id,
            DnNode {
                interval: TimeInterval::new(run.start, end),
                members: run.members,
            },
            fwd,
            run.rev,
        );
    }

    /// Opens a node for `members` (sorted) starting at `t`; returns its id.
    fn open(&mut self, members: Vec<ObjectId>, t: Time, rev: Vec<u32>) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        for m in &members {
            self.run_of[m.index()] = id;
            self.sink.timeline_push(*m, t, id);
        }
        if members.len() >= 2 {
            self.multi_open.insert(id, ());
        }
        self.open.insert(
            id,
            OpenRun {
                start: t,
                members,
                rev,
            },
        );
        id
    }

    fn initial_tick(&mut self, pairs: &[(u32, u32)]) {
        self.uf.reset();
        for &(a, b) in pairs {
            self.uf.union(a, b);
        }
        // Group members by root, in ascending object order for determinism.
        let mut groups: HashMap<u32, Vec<ObjectId>> = HashMap::new();
        for o in 0..self.num_objects as u32 {
            groups.entry(self.uf.find(o)).or_default().push(ObjectId(o));
        }
        let mut ordered: Vec<Vec<ObjectId>> = groups.into_values().collect();
        ordered.sort_by_key(|g| g[0]);
        for g in ordered {
            self.open(g, 0, Vec::new());
        }
    }

    fn step(&mut self, t: Time, pairs: &[(u32, u32)]) {
        // 1. Components among touched objects.
        self.uf.reset();
        let mut touched: Vec<u32> = Vec::with_capacity(pairs.len() * 2);
        for &(a, b) in pairs {
            self.uf.union(a, b);
            touched.push(a);
            touched.push(b);
        }
        touched.sort_unstable();
        touched.dedup();
        let mut keyed: Vec<(u32, u32)> = touched.iter().map(|&o| (self.uf.find(o), o)).collect();
        keyed.sort_unstable();
        // 2. Classify groups: continuation vs new.
        let mut new_groups: Vec<Vec<ObjectId>> = Vec::new();
        let mut continued: HashMap<u32, ()> = HashMap::new();
        let mut i = 0;
        while i < keyed.len() {
            let root = keyed[i].0;
            let mut g: Vec<ObjectId> = Vec::new();
            while i < keyed.len() && keyed[i].0 == root {
                g.push(ObjectId(keyed[i].1));
                i += 1;
            }
            let r = self.run_of[g[0].index()];
            let is_continuation = {
                let run = &self.open[&r];
                run.members == g && g.iter().all(|m| self.run_of[m.index()] == r)
            };
            if is_continuation {
                continued.insert(r, ());
            } else {
                new_groups.push(g);
            }
        }
        new_groups.sort_by_key(|g| g[0]);
        // 3. Collect runs that close at t-1: previous runs of new-group
        //    members, plus multi-member runs that were not continued.
        let mut closing: Vec<u32> = Vec::new();
        for g in &new_groups {
            for m in g {
                closing.push(self.run_of[m.index()]);
            }
        }
        for (&r, _) in self.multi_open.iter() {
            if !continued.contains_key(&r) {
                closing.push(r);
            }
        }
        closing.sort_unstable();
        closing.dedup();
        if closing.is_empty() {
            return; // silent continuation everywhere
        }
        // Pull closing runs out of the open set; they accumulate out-edges
        // during this step and are sealed at its end. Every out-edge a run
        // ever gets is created in the step that closes it, so sealing here
        // loses nothing — this is what makes streaming construction
        // possible.
        let mut sealing: Vec<(u32, OpenRun, Vec<u32>)> = Vec::with_capacity(closing.len());
        let mut seal_idx: HashMap<u32, usize> = HashMap::with_capacity(closing.len() * 2);
        for &r in &closing {
            let run = self.open.remove(&r).expect("closing run is open");
            self.multi_open.remove(&r);
            seal_idx.insert(r, sealing.len());
            sealing.push((r, run, Vec::new()));
        }
        // 4. Open new group nodes with edges from each member's old run.
        let mut pred_scratch: Vec<u32> = Vec::new();
        for g in std::mem::take(&mut new_groups) {
            pred_scratch.clear();
            pred_scratch.extend(g.iter().map(|m| self.run_of[m.index()]));
            pred_scratch.sort_unstable();
            pred_scratch.dedup();
            let id = self.open(g, t, pred_scratch.clone());
            for &p in &pred_scratch {
                sealing[seal_idx[&p]].2.push(id);
            }
        }
        // 5. Members of closed runs that did not join a new group become
        //    fresh singletons. (Collect first: the membership test reads
        //    `run_of` as left by phase 4, and singleton opens don't affect
        //    other objects' entries.)
        let singles: Vec<(usize, u32, ObjectId)> = sealing
            .iter()
            .enumerate()
            .flat_map(|(si, (r, run, _))| {
                run.members
                    .iter()
                    .filter(|m| self.run_of[m.index()] == *r)
                    .map(move |&m| (si, *r, m))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (si, r, m) in singles {
            let id = self.open(vec![m], t, vec![r]);
            sealing[si].2.push(id);
        }
        for (r, run, out) in sealing {
            self.seal(r, run, t - 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a DN from a compact event script: `script[t]` lists the pairs
    /// in contact at tick `t`.
    fn dn(num_objects: usize, script: Vec<Vec<(u32, u32)>>) -> DnGraph {
        let horizon = script.len() as Time;
        let g = DnGraph::build_from_ticks(num_objects, horizon, |t| script[t as usize].as_slice());
        g.validate().expect("valid DN");
        g
    }

    #[test]
    fn empty_dataset() {
        let g = dn(0, vec![]);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.size().edges, 0);
    }

    #[test]
    fn silent_world_is_one_singleton_run_each() {
        let g = dn(3, vec![vec![], vec![], vec![], vec![]]);
        assert_eq!(g.num_nodes(), 3);
        for n in g.nodes() {
            assert_eq!(n.interval, TimeInterval::new(0, 3));
            assert_eq!(n.members.len(), 1);
        }
        assert_eq!(g.size().edges, 0);
    }

    #[test]
    fn paper_figure_4_and_5() {
        // Figure 1/4/5 of the paper, objects o1..o4 → ids 0..3.
        // t=0: {o1,o2}; t=1: {o2,o4},{o3,o4}; t=2: {o1,o2},{o3,o4}; t=3: {o1,o2}.
        // (Contacts c1={o1,o2}@[0,0], c2={o2,o4}@[1,1], c3={o3,o4}@[1,2],
        //  c4={o1,o2}@[2,3] — with one extra tick 4 of silence to exercise
        //  the merge of c5/c7 shown in Figure 5.)
        let g = dn(
            4,
            vec![
                vec![(0, 1)],         // t=0: o1-o2
                vec![(1, 3), (2, 3)], // t=1: o2-o4, o3-o4 (one component {o2,o3,o4})
                vec![(0, 1), (2, 3)], // t=2
                vec![(0, 1)],         // t=3
            ],
        );
        // Expected components per tick:
        // t0: {0,1}, {2}, {3}
        // t1: {0}, {1,2,3}
        // t2: {0,1}, {2,3}
        // t3: {0,1}, {2}, {3}
        // Runs: {0,1}@[0,0], {2}@[0,0], {3}@[0,0], {0}@[1,1], {1,2,3}@[1,1],
        //       {0,1}@[2,3] (merged across t2,t3 — the paper's c5/c7 merge),
        //       {2,3}@[2,2], {2}@[3,3], {3}@[3,3].
        assert_eq!(g.num_nodes(), 9);
        let find = |members: &[u32], t: Time| -> u32 {
            (0..g.num_nodes() as u32)
                .find(|&i| {
                    let n = g.node(i);
                    n.alive_at(t)
                        && n.members == members.iter().map(|&m| ObjectId(m)).collect::<Vec<_>>()
                })
                .unwrap_or_else(|| panic!("no node {members:?} at t={t}"))
        };
        let merged = find(&[0, 1], 2);
        assert_eq!(g.node(merged).interval, TimeInterval::new(2, 3));
        let big = find(&[1, 2, 3], 1);
        assert_eq!(g.node(big).interval, TimeInterval::new(1, 1));
        // Edges out of the t=1 component: to {0,1}@[2,3] and {2,3}@[2,2].
        let mut succs: Vec<Vec<u32>> = g
            .fwd(big)
            .iter()
            .map(|&v| g.node(v).members.iter().map(|m| m.0).collect())
            .collect();
        succs.sort();
        assert_eq!(succs, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn merge_requires_identical_members() {
        // {0,1} at t=0, {0,1,2} at t=1: distinct nodes, with edges.
        let g = dn(3, vec![vec![(0, 1)], vec![(0, 1), (1, 2)]]);
        // Runs: {0,1}@0, {2}@0, {0,1,2}@1 → 3 nodes.
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.size().edges, 2);
    }

    #[test]
    fn breakup_creates_singletons_with_edges() {
        // {0,1} at t=0 then silence: both become singletons at t=1.
        let g = dn(2, vec![vec![(0, 1)], vec![]]);
        assert_eq!(g.num_nodes(), 3);
        let pair = (0..3u32)
            .find(|&i| g.node(i).members.len() == 2)
            .expect("pair node");
        assert_eq!(g.node(pair).interval, TimeInterval::new(0, 0));
        let mut succ_members: Vec<u32> = g
            .fwd(pair)
            .iter()
            .map(|&v| g.node(v).members[0].0)
            .collect();
        succ_members.sort();
        assert_eq!(succ_members, vec![0, 1]);
        for &v in g.fwd(pair) {
            assert_eq!(g.node(v).interval, TimeInterval::new(1, 1));
        }
    }

    #[test]
    fn long_singleton_runs_are_merged() {
        // One brief contact in a long horizon: singleton runs span the gaps.
        let mut script = vec![vec![]; 10];
        script[5] = vec![(0, 1)];
        let g = dn(2, script);
        // Runs: {0}@[0,4], {1}@[0,4], {0,1}@[5,5], {0}@[6,9], {1}@[6,9].
        assert_eq!(g.num_nodes(), 5);
        let pair = (0..5u32).find(|&i| g.node(i).members.len() == 2).unwrap();
        assert_eq!(g.node(pair).interval, TimeInterval::new(5, 5));
        assert_eq!(g.rev(pair).len(), 2);
        assert_eq!(g.fwd(pair).len(), 2);
    }

    #[test]
    fn node_of_is_consistent_over_time() {
        let g = dn(3, vec![vec![(0, 1)], vec![(0, 1)], vec![(1, 2)], vec![]]);
        for t in 0..4 {
            for o in 0..3u32 {
                let nid = g.node_of(ObjectId(o), t);
                assert!(g.node(nid.0).alive_at(t));
                assert!(g.node(nid.0).contains(ObjectId(o)));
            }
        }
        // o0 and o1 share a node at t=1 but not at t=2.
        assert_eq!(g.node_of(ObjectId(0), 1), g.node_of(ObjectId(1), 1));
        assert_ne!(g.node_of(ObjectId(0), 2), g.node_of(ObjectId(1), 2));
    }

    #[test]
    fn ten_size_formula() {
        let s = DnGraph::ten_size(4, 5, 7);
        assert_eq!(s.vertices, 20);
        assert_eq!(s.edges, 4 * 4 + 7);
    }

    #[test]
    fn reduction_shrinks_lonely_world() {
        // 5 objects, 100 silent ticks: TEN has 500 vertices, DN has 5.
        let g = dn(5, vec![vec![]; 100]);
        assert_eq!(g.size().vertices, 5);
        let ten = DnGraph::ten_size(5, 100, 0);
        assert_eq!(ten.vertices, 500);
        assert!(g.size().vertices < ten.vertices / 10);
    }

    #[test]
    fn ids_are_topologically_sorted_by_start() {
        let g = dn(4, vec![vec![(0, 1)], vec![(2, 3)], vec![(0, 2)], vec![]]);
        for u in 0..g.num_nodes() as u32 {
            for &v in g.fwd(u) {
                assert!(u < v, "edge {u}->{v} violates id topological order");
                assert!(g.node(u).interval.end < g.node(v).interval.start);
            }
        }
    }

    /// The per-tick scripts of these tests expressed as maximal contacts.
    fn contacts_of_script(script: &[Vec<(u32, u32)>]) -> Vec<Contact> {
        let mut acc = reach_core::ContactAccumulator::new();
        for (t, pairs) in script.iter().enumerate() {
            for &(a, b) in pairs {
                acc.push(reach_core::ContactEvent::new(
                    t as Time,
                    ObjectId(a),
                    ObjectId(b),
                ));
            }
        }
        acc.finish()
    }

    /// Structural equality of two DNs: same nodes (members + intervals, same
    /// ids) and same DN1 edges.
    fn assert_same_dn(a: &DnGraph, b: &DnGraph) {
        assert_eq!(a.num_objects(), b.num_objects());
        assert_eq!(a.horizon(), b.horizon());
        assert_eq!(a.nodes(), b.nodes());
        for v in 0..a.num_nodes() as u32 {
            assert_eq!(a.fwd(v), b.fwd(v), "out-edges of node {v} differ");
            assert_eq!(a.rev(v), b.rev(v), "in-edges of node {v} differ");
        }
    }

    #[test]
    fn from_contacts_matches_tick_construction() {
        type Script = Vec<Vec<(u32, u32)>>;
        let scripts: Vec<(usize, Script)> = vec![
            (
                4,
                vec![
                    vec![(0, 1)],
                    vec![(1, 3), (2, 3)],
                    vec![(0, 1), (2, 3)],
                    vec![(0, 1)],
                ],
            ),
            (3, vec![vec![], vec![], vec![]]),
            (2, vec![vec![(0, 1)], vec![]]),
            (5, {
                let mut s = vec![vec![]; 12];
                s[3] = vec![(0, 1), (2, 3)];
                s[4] = vec![(0, 1)];
                s[9] = vec![(1, 4)];
                s
            }),
        ];
        for (n, script) in scripts {
            let by_tick = dn(n, script.clone());
            let contacts = contacts_of_script(&script);
            let direct = DnGraph::from_contacts(n, script.len() as Time, &contacts);
            direct.validate().expect("contact-built DN is valid");
            assert_same_dn(&by_tick, &direct);
        }
    }

    #[test]
    fn from_contacts_accepts_unsorted_input() {
        let script = vec![vec![(0, 1)], vec![(1, 2)], vec![(1, 2)], vec![(0, 1)]];
        let mut contacts = contacts_of_script(&script);
        contacts.reverse();
        let direct = DnGraph::from_contacts(3, 4, &contacts);
        assert_same_dn(&dn(3, script), &direct);
    }

    #[test]
    #[should_panic(expected = "outside the universe")]
    fn from_contacts_rejects_foreign_objects() {
        let c = Contact::new(ObjectId(0), ObjectId(9), TimeInterval::new(0, 0));
        let _ = DnGraph::from_contacts(2, 4, &[c]);
    }

    #[test]
    #[should_panic(expected = "beyond the horizon")]
    fn from_contacts_rejects_overlong_intervals() {
        let c = Contact::new(ObjectId(0), ObjectId(1), TimeInterval::new(0, 4));
        let _ = DnGraph::from_contacts(2, 4, &[c]);
    }

    #[test]
    #[should_panic(expected = "self-contact")]
    fn from_contacts_rejects_self_contacts() {
        // Contact::new forbids a == b, but the fields are public.
        let c = Contact {
            a: ObjectId(1),
            b: ObjectId(1),
            interval: TimeInterval::new(0, 1),
        };
        let _ = DnGraph::from_contacts(2, 4, &[c]);
    }

    #[test]
    fn chain_contacts_rebuild_the_identical_dn() {
        type Script = Vec<Vec<(u32, u32)>>;
        let scripts: Vec<(usize, Script)> = vec![
            (
                4,
                vec![
                    vec![(0, 1)],
                    vec![(1, 3), (2, 3)],
                    vec![(0, 1), (2, 3)],
                    vec![(0, 1)],
                ],
            ),
            // A 4-member star: chains must re-create the same component even
            // though the original edges were a star, not a path.
            (5, vec![vec![(0, 1), (0, 2), (0, 3)], vec![], vec![(2, 4)]]),
            (3, vec![vec![], vec![], vec![]]),
        ];
        for (n, script) in scripts {
            let dn = dn(n, script);
            let chains = chain_contacts(&dn);
            let rebuilt = DnGraph::from_contacts(n, dn.horizon(), &chains);
            assert_same_dn(&dn, &rebuilt);
        }
    }

    #[test]
    fn chain_sweep_streams_what_chain_contacts_materializes() {
        let script = vec![
            vec![(0, 1), (0, 2), (3, 4)],
            vec![(0, 1)],
            vec![],
            vec![(2, 3), (3, 4)],
        ];
        let g = dn(5, script);
        let mut sweep = ChainSweep::new(&g);
        let rebuilt = DnGraph::build_streaming(5, g.horizon(), |t, buf| sweep.emit(t, buf));
        rebuilt.validate().expect("swept DN is valid");
        assert_same_dn(&g, &rebuilt);
        assert_eq!(
            sweep.chains(),
            chain_contacts(&g).len() as u64,
            "streamed chain count matches the materialized extraction"
        );
    }

    #[test]
    fn chain_contacts_merge_transparently_with_later_events() {
        // Build the full world two ways: directly, and as chains of a prefix
        // DN merged with the suffix events — the DAGs must be identical.
        let full_script = vec![
            vec![(0, 1), (2, 3)],
            vec![(1, 2)],
            vec![],
            vec![(0, 3), (1, 3)],
            vec![(0, 3)],
        ];
        let n = 4;
        let cut = 3usize; // prefix covers ticks [0, 3)
        let full = dn(n, full_script.clone());
        let prefix =
            DnGraph::build_from_ticks(n, cut as Time, |t| full_script[t as usize].as_slice());
        let mut merged = chain_contacts(&prefix);
        let mut acc = reach_core::ContactAccumulator::new();
        for (t, pairs) in full_script.iter().enumerate().skip(cut) {
            for &(a, b) in pairs {
                acc.push(reach_core::ContactEvent::new(
                    t as Time,
                    ObjectId(a),
                    ObjectId(b),
                ));
            }
        }
        merged.extend(acc.finish());
        let rebuilt = DnGraph::from_contacts(n, full_script.len() as Time, &merged);
        assert_same_dn(&full, &rebuilt);
    }

    #[test]
    fn csr_from_pairs_dedups() {
        let csr = Csr::from_pairs(3, vec![(0, 1), (0, 1), (0, 2), (2, 0)]);
        assert_eq!(csr.out(0), &[1, 2]);
        assert_eq!(csr.out(1), &[] as &[u32]);
        assert_eq!(csr.out(2), &[0]);
        assert_eq!(csr.num_edges(), 3);
        assert_eq!(csr.num_nodes(), 3);
    }

    #[test]
    fn csr_from_lists_preserves_order() {
        let csr = Csr::from_lists(&[vec![2, 1], vec![], vec![0]]);
        assert_eq!(csr.out(0), &[2, 1]);
        assert_eq!(csr.out(2), &[0]);
    }
}
