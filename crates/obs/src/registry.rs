//! The unified metrics registry: named counters, gauges, and log-bucketed
//! histograms behind one concurrent handle, with Prometheus-style text
//! exposition and a JSON snapshot.
//!
//! Hot paths touch only atomics — a counter bump is one `fetch_add`, a
//! histogram observation is two. There are **no floats on the recording
//! path**: histograms take `u64` observations (callers fix-point their
//! quantities — the serve layer records normalized IO scaled ×20, which is
//! exact), and floats appear only at snapshot time.
//!
//! ## Histogram buckets and the percentile error bound
//!
//! Buckets are log-linear: values `0..=7` get exact unit buckets, and each
//! power-of-two decade `[2^m, 2^{m+1})` above that is split into 8 linear
//! sub-buckets. [`Histogram::quantile`] is nearest-rank over the bucket
//! *upper* bounds, so a reported percentile `p` satisfies
//! `v ≤ p < v · (1 + 1/8)` for the true rank value `v` — an overestimate
//! of at most 12.5 % (exact below 8). That bound is what lets the serve
//! metrics publish p50/p99 from a fixed array of atomics instead of an
//! unbounded sample vector.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sub-buckets per power-of-two decade (the percentile error bound is
/// `1/LINEAR_SUBDIVISIONS`).
const SUBS: u64 = 8;
/// Exact unit buckets for values below [`SUBS`].
const EXACT: usize = SUBS as usize;
/// Total bucket count: 8 exact + 61 decades × 8 sub-buckets.
const BUCKETS: usize = EXACT + 61 * SUBS as usize;

/// A monotonically increasing counter.
#[derive(Default, Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge (non-negative; the workspace's gauges are all
/// counts and byte sizes).
#[derive(Default, Debug)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed log-linear-bucketed histogram of `u64` observations (see the
/// module docs for the bucket scheme and error bound).
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: Box::new([0u64; BUCKETS].map(AtomicU64::new)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Bucket index of `v`.
    fn index(v: u64) -> usize {
        if v < SUBS {
            v as usize
        } else {
            let m = 63 - v.leading_zeros() as u64; // v in [2^m, 2^{m+1}), m >= 3
            let sub = (v >> (m - 3)) & (SUBS - 1);
            (EXACT as u64 + (m - 3) * SUBS + sub) as usize
        }
    }

    /// Inclusive upper bound of bucket `i` — what [`Histogram::quantile`]
    /// reports.
    fn bound(i: usize) -> u64 {
        if i < EXACT {
            i as u64
        } else {
            let d = (i - EXACT) as u64;
            let (m, sub) = (d / SUBS + 3, d % SUBS);
            let width = 1u64 << (m - 3);
            // Wrapping on purpose: the very top bucket's exclusive bound is
            // 2^64, so its inclusive bound wraps to exactly `u64::MAX`.
            (1u64 << m).wrapping_add((sub + 1) * width).wrapping_sub(1)
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[Self::index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Nearest-rank quantile (`q` in `[0, 1]`), reported as the matching
    /// bucket's inclusive upper bound — an overestimate of at most 12.5 %
    /// (exact for values below 8). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            seen += self.buckets[i].load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bound(i);
            }
        }
        Self::bound(BUCKETS - 1)
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs, in
    /// ascending bound order — the exposition's `le` series.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        (0..BUCKETS)
            .filter_map(|i| {
                let n = self.buckets[i].load(Ordering::Relaxed);
                (n > 0).then_some((Self::bound(i), n))
            })
            .collect()
    }
}

/// One registered metric.
#[derive(Clone, Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A concurrent registry of named metrics (see the module docs).
///
/// Registration takes a short lock; the returned `Arc` handles are then
/// lock-free to update. Names are free-form — exposition sanitizes them to
/// the Prometheus charset — but the convention in this workspace is
/// `family_metric` (e.g. `serve_completed`, `cache_hits`).
#[derive(Default, Debug)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn entry(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut m = self.metrics.lock().expect("registry poisoned");
        m.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// The counter named `name`, registered on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.entry(name, || Metric::Counter(Arc::new(Counter::default()))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge named `name`, registered on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.entry(name, || Metric::Gauge(Arc::new(Gauge::default()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram named `name`, registered on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.entry(name, || Metric::Histogram(Arc::new(Histogram::default()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// Convenience: sets the gauge named `name` to `v`.
    pub fn set_gauge(&self, name: &str, v: u64) {
        self.gauge(name).set(v);
    }

    /// Convenience: adds `v` to the counter named `name`.
    pub fn add(&self, name: &str, v: u64) {
        self.counter(name).add(v);
    }

    /// Registered metric names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.metrics
            .lock()
            .expect("registry poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Prometheus-style text exposition: `# TYPE` lines plus samples, in
    /// sorted name order (byte-stable for identical metric values).
    /// Histograms expose cumulative `_bucket{le="…"}` series over the
    /// non-empty buckets, `_sum`, and `_count`.
    pub fn expose_text(&self) -> String {
        let metrics = self.metrics.lock().expect("registry poisoned").clone();
        let mut out = String::new();
        for (name, metric) in &metrics {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} {}", metric.kind());
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (bound, n) in h.nonzero_buckets() {
                        cumulative += n;
                        let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
                    let _ = writeln!(out, "{name}_sum {}", h.sum());
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }

    /// JSON snapshot: `{"counters": {...}, "gauges": {...}, "histograms":
    /// {"name": {"count": n, "sum": s, "p50": v, "p99": v}}}`, sorted and
    /// integer-valued (percentiles are bucket bounds).
    pub fn snapshot_json(&self) -> String {
        let metrics = self.metrics.lock().expect("registry poisoned").clone();
        let section = |out: &mut String, title: &str, body: Vec<String>, last: bool| {
            let _ = writeln!(out, "  \"{title}\": {{");
            let n = body.len();
            for (i, line) in body.into_iter().enumerate() {
                let comma = if i + 1 < n { "," } else { "" };
                let _ = writeln!(out, "    {line}{comma}");
            }
            let _ = writeln!(out, "  }}{}", if last { "" } else { "," });
        };
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut hists = Vec::new();
        for (name, metric) in &metrics {
            let name = sanitize(name);
            match metric {
                Metric::Counter(c) => counters.push(format!("\"{name}\": {}", c.get())),
                Metric::Gauge(g) => gauges.push(format!("\"{name}\": {}", g.get())),
                Metric::Histogram(h) => hists.push(format!(
                    "\"{name}\": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p99\": {}}}",
                    h.count(),
                    h.sum(),
                    h.quantile(0.50),
                    h.quantile(0.99)
                )),
            }
        }
        let mut out = String::from("{\n");
        section(&mut out, "counters", counters, false);
        section(&mut out, "gauges", gauges, false);
        section(&mut out, "histograms", hists, true);
        out.push_str("}\n");
        out
    }
}

/// Maps a metric name onto the Prometheus charset (`[a-zA-Z0-9_:]`).
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let r = Registry::new();
        r.counter("hits").add(3);
        r.counter("hits").inc();
        r.set_gauge("depth", 17);
        assert_eq!(r.counter("hits").get(), 4);
        assert_eq!(r.gauge("depth").get(), 17);
        assert_eq!(r.names(), vec!["depth".to_string(), "hits".to_string()]);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_conflicts_are_rejected() {
        let r = Registry::new();
        r.counter("x").inc();
        r.gauge("x");
    }

    #[test]
    fn histogram_buckets_are_exact_below_eight() {
        let h = Histogram::default();
        for v in 0..8 {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 28);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 7);
    }

    #[test]
    fn quantile_error_is_bounded_by_an_eighth() {
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v * 20); // the serve layer's ×20 fix-point
        }
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        // True rank values: 50*20 = 1000 and 99*20 = 1980.
        assert!((1000..=1125).contains(&p50), "p50 bound = {p50}");
        assert!((1980..=2228).contains(&p99), "p99 bound = {p99}");
    }

    #[test]
    fn bucket_bound_covers_its_own_index() {
        for v in [0u64, 1, 7, 8, 9, 63, 64, 100, 1020, 65535, 1 << 40] {
            let i = Histogram::index(v);
            let b = Histogram::bound(i);
            assert!(b >= v, "bound({i}) = {b} < {v}");
            if v >= 8 {
                assert!(b < v + v / 8 + 1, "bound({i}) = {b} overshoots {v}");
            } else {
                assert_eq!(b, v);
            }
        }
    }

    #[test]
    fn exposition_is_sorted_and_parseable_shape() {
        let r = Registry::new();
        r.counter("serve_completed").add(9);
        r.set_gauge("serve/queue-depth", 2); // sanitized
        let h = r.histogram("serve_io_x20");
        h.record(40);
        h.record(41);
        let text = r.expose_text();
        assert!(text.contains("# TYPE serve_completed counter"), "{text}");
        assert!(text.contains("serve_completed 9"), "{text}");
        assert!(text.contains("serve_queue_depth 2"), "{text}");
        assert!(text.contains("# TYPE serve_io_x20 histogram"), "{text}");
        assert!(
            text.contains("serve_io_x20_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("serve_io_x20_sum 81"), "{text}");
        assert!(text.contains("serve_io_x20_count 2"), "{text}");
        // Cumulative le series never decreases.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{le=")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "cumulative series decreased: {line}");
            last = v;
        }
    }

    #[test]
    fn json_snapshot_has_all_sections() {
        let r = Registry::new();
        r.counter("c").add(1);
        r.set_gauge("g", 2);
        r.histogram("h").record(5);
        let json = r.snapshot_json();
        assert!(json.contains("\"counters\""), "{json}");
        assert!(json.contains("\"c\": 1"), "{json}");
        assert!(json.contains("\"g\": 2"), "{json}");
        assert!(
            json.contains("\"h\": {\"count\": 1, \"sum\": 5, \"p50\": 5, \"p99\": 5}"),
            "{json}"
        );
    }

    #[test]
    fn concurrent_updates_add_up() {
        let r = Arc::new(Registry::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    let c = r.counter("n");
                    let h = r.histogram("h");
                    for i in 0..1000u64 {
                        c.inc();
                        h.record(i % 64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.counter("n").get(), 4000);
        assert_eq!(r.histogram("h").count(), 4000);
    }
}
