//! The flight recorder: a fixed-size lock-striped ring buffer of recent
//! span events, plus a slow-query log with configurable IO / latency
//! thresholds.
//!
//! Finished spans from traced queries mirror into the recorder (when one is
//! attached to the [`crate::Tracer`]), overwriting the oldest events once
//! the ring is full. Striping keeps the hot path to one short per-stripe
//! lock: events round-robin across 8 independent rings by a global atomic
//! sequence number, so concurrent serve workers rarely contend on the same
//! stripe. [`FlightRecorder::dump`] reassembles the surviving events in
//! recording order by that same sequence number.
//!
//! The slow-query log is the recorder's sibling for tail analysis: it keeps
//! the worst recent queries whose **counted reads** or **elapsed ticks**
//! crossed a threshold. Read counts are deterministic under the paper's IO
//! model, so the perf gate can count slow-query hits; tick thresholds are
//! for wall-clock use and default to disabled (`u64::MAX`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::span::SpanEvent;

/// Number of independent ring stripes (power of two).
const STRIPES: usize = 8;

/// One stripe: a bounded ring of events.
#[derive(Debug, Default)]
struct Stripe {
    ring: Vec<(u64, SpanEvent)>,
    next: usize,
}

/// A fixed-capacity, lock-striped ring buffer of recent [`SpanEvent`]s
/// (see the module docs).
#[derive(Debug)]
pub struct FlightRecorder {
    stripes: [Mutex<Stripe>; STRIPES],
    per_stripe: usize,
    seq: AtomicU64,
    bytes: AtomicU64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (rounded up to a
    /// multiple of the stripe count; minimum one event per stripe).
    pub fn with_capacity(capacity: usize) -> Self {
        let per_stripe = capacity.div_ceil(STRIPES).max(1);
        Self {
            stripes: std::array::from_fn(|_| Mutex::new(Stripe::default())),
            per_stripe,
            seq: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Total event capacity across all stripes.
    pub fn capacity(&self) -> usize {
        self.per_stripe * STRIPES
    }

    /// Records one finished span event, evicting the oldest event in its
    /// stripe once that stripe is full.
    pub fn record(&self, event: SpanEvent) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(event.approx_bytes(), Ordering::Relaxed);
        let mut stripe = self.stripes[(seq as usize) % STRIPES]
            .lock()
            .expect("recorder stripe poisoned");
        if stripe.ring.len() < self.per_stripe {
            stripe.ring.push((seq, event));
        } else {
            let slot = stripe.next;
            stripe.ring[slot] = (seq, event);
        }
        stripe.next = (stripe.next + 1) % self.per_stripe;
    }

    /// Events recorded over the recorder's lifetime (including evicted
    /// ones).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Approximate bytes recorded over the recorder's lifetime, from
    /// [`SpanEvent::approx_bytes`] — deterministic for a deterministic
    /// workload, which is what the `rwp/obs/*` perf counters gate on.
    pub fn bytes_recorded(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// The surviving events, oldest first by global sequence number. When
    /// the ring has wrapped, these are exactly the newest
    /// [`FlightRecorder::capacity`] events.
    pub fn dump(&self) -> Vec<SpanEvent> {
        let mut all: Vec<(u64, SpanEvent)> = Vec::new();
        for stripe in &self.stripes {
            let s = stripe.lock().expect("recorder stripe poisoned");
            all.extend(s.ring.iter().cloned());
        }
        all.sort_by_key(|(seq, _)| *seq);
        all.into_iter().map(|(_, e)| e).collect()
    }

    /// One line per surviving event, oldest first — the on-panic /
    /// on-demand dump format.
    pub fn dump_text(&self) -> String {
        let events = self.dump();
        let mut out = String::with_capacity(events.len() * 96);
        out.push_str(&format!(
            "# flight recorder: {} of {} lifetime events retained\n",
            events.len(),
            self.recorded()
        ));
        for e in events {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }
}

/// Thresholds for [`SlowQueryLog`] admission. A query is slow when its
/// counted reads **or** elapsed ticks reach the respective threshold.
#[derive(Clone, Copy, Debug)]
pub struct SlowQueryPolicy {
    /// Minimum counted reads (random + sequential) to qualify.
    /// Deterministic under the paper's IO model.
    pub min_reads: u64,
    /// Minimum elapsed monotonic ticks (nanoseconds) to qualify.
    /// `u64::MAX` (the default) disables the latency criterion, which keeps
    /// slow-query hit counts deterministic for the perf gate.
    pub min_ticks: u64,
    /// Maximum entries retained (oldest evicted first).
    pub keep: usize,
}

impl Default for SlowQueryPolicy {
    fn default() -> Self {
        Self {
            min_reads: 1_000,
            min_ticks: u64::MAX,
            keep: 64,
        }
    }
}

/// One retained slow query.
#[derive(Clone, Debug)]
pub struct SlowQuery {
    /// Trace id of the offending query (0 when untraced).
    pub trace: u64,
    /// Short description — typically the root span's name and label.
    pub what: String,
    /// Counted reads (random + sequential).
    pub reads: u64,
    /// Elapsed monotonic ticks.
    pub ticks: u64,
}

/// A bounded log of the most recent queries that crossed the
/// [`SlowQueryPolicy`] thresholds.
#[derive(Debug)]
pub struct SlowQueryLog {
    policy: SlowQueryPolicy,
    hits: AtomicU64,
    entries: Mutex<Vec<SlowQuery>>,
}

impl SlowQueryLog {
    /// An empty log with the given policy.
    pub fn new(policy: SlowQueryPolicy) -> Self {
        Self {
            policy,
            hits: AtomicU64::new(0),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// The admission policy.
    pub fn policy(&self) -> SlowQueryPolicy {
        self.policy
    }

    /// Offers one completed query; returns whether it qualified as slow
    /// (and was logged).
    pub fn observe(&self, trace: u64, what: &str, reads: u64, ticks: u64) -> bool {
        if reads < self.policy.min_reads && ticks < self.policy.min_ticks {
            return false;
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().expect("slow-query log poisoned");
        if entries.len() == self.policy.keep {
            entries.remove(0);
        }
        entries.push(SlowQuery {
            trace,
            what: what.to_string(),
            reads,
            ticks,
        });
        true
    }

    /// Lifetime count of qualifying queries (including evicted entries) —
    /// deterministic when only the read criterion is active.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// The retained entries, oldest first.
    pub fn dump(&self) -> Vec<SlowQuery> {
        self.entries
            .lock()
            .expect("slow-query log poisoned")
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::IoDelta;

    fn event(label: &str) -> SpanEvent {
        SpanEvent {
            trace: 7,
            span: 1,
            parent: 0,
            name: "test",
            label: label.to_string(),
            start: 0,
            end: 1,
            io: IoDelta::default(),
            visited: 0,
            seeds: 0,
        }
    }

    #[test]
    fn capacity_rounds_up_to_full_stripes() {
        assert_eq!(FlightRecorder::with_capacity(1).capacity(), 8);
        assert_eq!(FlightRecorder::with_capacity(8).capacity(), 8);
        assert_eq!(FlightRecorder::with_capacity(9).capacity(), 16);
        assert_eq!(FlightRecorder::with_capacity(64).capacity(), 64);
    }

    #[test]
    fn dump_is_in_recording_order() {
        let rec = FlightRecorder::with_capacity(32);
        for i in 0..20 {
            rec.record(event(&format!("e{i}")));
        }
        let labels: Vec<String> = rec.dump().into_iter().map(|e| e.label).collect();
        let expect: Vec<String> = (0..20).map(|i| format!("e{i}")).collect();
        assert_eq!(labels, expect);
        assert_eq!(rec.recorded(), 20);
    }

    #[test]
    fn wraparound_keeps_exactly_the_newest_events() {
        let rec = FlightRecorder::with_capacity(16);
        for i in 0..50 {
            rec.record(event(&format!("e{i}")));
        }
        let labels: Vec<String> = rec.dump().into_iter().map(|e| e.label).collect();
        let expect: Vec<String> = (34..50).map(|i| format!("e{i}")).collect();
        assert_eq!(labels, expect, "ring must retain the newest 16 events");
        assert_eq!(rec.recorded(), 50);
        assert!(rec.bytes_recorded() > 0);
    }

    #[test]
    fn dump_text_mentions_retention() {
        let rec = FlightRecorder::with_capacity(8);
        for i in 0..12 {
            rec.record(event(&format!("e{i}")));
        }
        let text = rec.dump_text();
        assert!(text.starts_with("# flight recorder: 8 of 12"), "{text}");
    }

    #[test]
    fn slow_query_log_applies_the_read_threshold() {
        let log = SlowQueryLog::new(SlowQueryPolicy {
            min_reads: 100,
            min_ticks: u64::MAX,
            keep: 2,
        });
        assert!(!log.observe(1, "fast", 99, u64::MAX - 1));
        assert!(log.observe(2, "slow-a", 100, 0));
        assert!(log.observe(3, "slow-b", 500, 0));
        assert!(log.observe(4, "slow-c", 101, 0));
        assert_eq!(log.hits(), 3);
        let kept: Vec<String> = log.dump().into_iter().map(|e| e.what).collect();
        assert_eq!(kept, vec!["slow-b".to_string(), "slow-c".to_string()]);
    }

    #[test]
    fn tick_threshold_can_catch_latency_outliers() {
        let log = SlowQueryLog::new(SlowQueryPolicy {
            min_reads: u64::MAX,
            min_ticks: 1_000,
            keep: 4,
        });
        assert!(!log.observe(1, "quick", 0, 999));
        assert!(log.observe(2, "laggy", 0, 1_000));
        assert_eq!(log.hits(), 1);
    }

    #[test]
    fn concurrent_recording_loses_nothing_before_wrap() {
        let rec = std::sync::Arc::new(FlightRecorder::with_capacity(4096));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let rec = std::sync::Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..256 {
                        rec.record(event(&format!("t{t}-{i}")));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(rec.recorded(), 1024);
        assert_eq!(rec.dump().len(), 1024);
    }
}
