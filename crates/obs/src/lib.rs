//! Structured observability for the reachability stack: per-query trace
//! spans, a unified metrics registry, and a flight recorder.
//!
//! The crate is deliberately **zero-dependency** (std only) so every layer
//! of the workspace — including `reach_core`, whose request envelope
//! carries the [`Tracer`] — can depend on it without a cycle.
//!
//! Three pieces, usable independently or bundled through [`Obs`]:
//!
//! * [`Tracer`] / [`Span`] ([`span`]): a per-query recorder handle carried
//!   through `ReachRequest`. Disabled by default and free when disabled;
//!   enabled, a query yields a span tree (serve admission → cohort →
//!   dispatch → per-shard leg) whose per-span [`IoDelta`]s sum to the
//!   query's `IoStats` totals.
//! * [`Registry`] ([`registry`]): named counters, gauges, and log-bucketed
//!   histograms (no floats on the recording path) with Prometheus-style
//!   text exposition and a JSON snapshot.
//! * [`FlightRecorder`] / [`SlowQueryLog`] ([`recorder`]): a lock-striped
//!   ring of recent span events plus a bounded log of threshold-crossing
//!   queries, dumped on demand or on worker panic.
//!
//! The binding contract, asserted by the tier-1 `observability.rs` suite:
//! **attaching observability must not change the paper's counted-IO
//! numbers** — tracing only observes counters the evaluation computes
//! anyway.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod recorder;
pub mod registry;
pub mod span;

pub use recorder::{FlightRecorder, SlowQuery, SlowQueryLog, SlowQueryPolicy};
pub use registry::{Counter, Gauge, Histogram, Registry};
pub use span::{now_ticks, IoDelta, Span, SpanEvent, Tracer};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration for an [`Obs`] bundle.
#[derive(Clone, Copy, Debug)]
pub struct ObsConfig {
    /// Whether queries admitted through this bundle get an enabled tracer.
    pub trace: bool,
    /// Flight-recorder capacity in events (0 disables the recorder).
    pub recorder_capacity: usize,
    /// Slow-query admission thresholds.
    pub slow: SlowQueryPolicy,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            trace: true,
            recorder_capacity: 4096,
            slow: SlowQueryPolicy::default(),
        }
    }
}

/// The serving stack's observability bundle: a shared [`Registry`], an
/// optional [`FlightRecorder`], a [`SlowQueryLog`], and a tracer mint.
///
/// One `Obs` is shared (via `Arc`) between the serve pool, the exposition
/// writer, and whoever dumps the recorder.
#[derive(Debug)]
pub struct Obs {
    config: ObsConfig,
    registry: Registry,
    recorder: Option<Arc<FlightRecorder>>,
    slow: SlowQueryLog,
    next_trace: AtomicU64,
}

impl Default for Obs {
    fn default() -> Self {
        Self::new(ObsConfig::default())
    }
}

impl Obs {
    /// A bundle with the given configuration.
    pub fn new(config: ObsConfig) -> Self {
        Self {
            config,
            registry: Registry::new(),
            recorder: (config.recorder_capacity > 0)
                .then(|| Arc::new(FlightRecorder::with_capacity(config.recorder_capacity))),
            slow: SlowQueryLog::new(config.slow),
            next_trace: AtomicU64::new(1),
        }
    }

    /// A bundle whose tracer mint is disabled (metrics and slow-query log
    /// still active) — the configuration the perf gate runs under.
    pub fn untraced() -> Self {
        Self::new(ObsConfig {
            trace: false,
            ..ObsConfig::default()
        })
    }

    /// The configuration this bundle was built with.
    pub fn config(&self) -> ObsConfig {
        self.config
    }

    /// The shared metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The flight recorder, when one is configured.
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.as_ref()
    }

    /// The slow-query log.
    pub fn slow_log(&self) -> &SlowQueryLog {
        &self.slow
    }

    /// Mints a tracer for one query: enabled (with a fresh trace id, wired
    /// to the flight recorder when present) if the bundle traces, otherwise
    /// [`Tracer::off`].
    pub fn tracer(&self) -> Tracer {
        if !self.config.trace {
            return Tracer::off();
        }
        let id = self.next_trace.fetch_add(1, Ordering::Relaxed);
        match &self.recorder {
            Some(rec) => Tracer::recorded(id, Arc::clone(rec)),
            None => Tracer::enabled(id),
        }
    }

    /// Offers one completed query to the slow-query log (see
    /// [`SlowQueryLog::observe`]).
    pub fn observe_query(&self, trace: u64, what: &str, reads: u64, ticks: u64) -> bool {
        self.slow.observe(trace, what, reads, ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bundle_mints_distinct_recorded_tracers() {
        let obs = Obs::default();
        let a = obs.tracer();
        let b = obs.tracer();
        assert!(a.is_enabled() && b.is_enabled());
        assert_ne!(a.trace_id(), b.trace_id());
        a.span("x").finish();
        let rec = obs.recorder().expect("default bundle has a recorder");
        assert_eq!(rec.recorded(), 1);
    }

    #[test]
    fn untraced_bundle_mints_disabled_tracers() {
        let obs = Obs::untraced();
        assert!(!obs.tracer().is_enabled());
        assert!(obs.recorder().is_some(), "recorder stays available");
    }

    #[test]
    fn zero_capacity_disables_the_recorder() {
        let obs = Obs::new(ObsConfig {
            recorder_capacity: 0,
            ..ObsConfig::default()
        });
        assert!(obs.recorder().is_none());
        let t = obs.tracer();
        assert!(t.is_enabled(), "tracing works without a recorder");
        t.span("x").finish();
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn observe_query_feeds_the_slow_log() {
        let obs = Obs::new(ObsConfig {
            slow: SlowQueryPolicy {
                min_reads: 10,
                min_ticks: u64::MAX,
                keep: 8,
            },
            ..ObsConfig::default()
        });
        assert!(!obs.observe_query(1, "q1", 9, 0));
        assert!(obs.observe_query(2, "q2", 10, 0));
        assert_eq!(obs.slow_log().hits(), 1);
    }
}
