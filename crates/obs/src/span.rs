//! Per-query trace spans: the [`Tracer`] handle carried through the
//! request envelope and the [`Span`] guards the stack opens around each
//! phase of evaluation.
//!
//! The design constraint is the repository's IO-accounting contract: the
//! paper's counted-IO numbers must be *byte-identical* whether tracing is
//! attached or not. A disabled [`Tracer`] is therefore a single `Option`
//! that is `None` — every operation on it (and on the [`Span`]s it mints)
//! is a no-op that never allocates, never takes a lock, and never touches
//! a device. An enabled tracer only *observes* counters the evaluation
//! already computes (the per-leg `IoStats` deltas the indexes sample
//! anyway), so attaching it cannot perturb them either.
//!
//! Spans form a tree per trace (one trace per query): the tracer keeps an
//! *ambient* parent — opening a span nests it under the innermost open
//! span on this trace, finishing it restores the parent. Traces are
//! single-threaded at any instant (a request is evaluated by exactly one
//! worker at a time), which is what makes the ambient scheme exact.

use crate::recorder::FlightRecorder;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Monotonic tick source: nanoseconds since the first observation in this
/// process. Ticks are wall-clock-free (no epochs, no adjustments) and only
/// ever compared to each other.
pub fn now_ticks() -> u64 {
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

/// Device-IO counters attributed to one span — the span-local slice of the
/// workspace's `IoStats` (defined here, dependency-free, so storage can
/// convert into it without a cycle).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct IoDelta {
    /// Page reads that required a seek.
    pub random_reads: u64,
    /// Page reads that continued a consecutive scan.
    pub seq_reads: u64,
    /// Page writes that required a seek.
    pub random_writes: u64,
    /// Page writes that continued a consecutive scan.
    pub seq_writes: u64,
    /// Reads served from a cache without touching the device.
    pub cache_hits: u64,
}

impl IoDelta {
    /// Reads-only delta (the common span payload: queries never write).
    pub fn reads(random: u64, seq: u64) -> Self {
        Self {
            random_reads: random,
            seq_reads: seq,
            ..Self::default()
        }
    }

    /// Total device page reads.
    pub fn total_reads(&self) -> u64 {
        self.random_reads + self.seq_reads
    }

    /// Total device page writes.
    pub fn total_writes(&self) -> u64 {
        self.random_writes + self.seq_writes
    }

    /// Element-wise sum.
    pub fn merged(&self, other: &IoDelta) -> IoDelta {
        IoDelta {
            random_reads: self.random_reads + other.random_reads,
            seq_reads: self.seq_reads + other.seq_reads,
            random_writes: self.random_writes + other.random_writes,
            seq_writes: self.seq_writes + other.seq_writes,
            cache_hits: self.cache_hits + other.cache_hits,
        }
    }

    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == IoDelta::default()
    }
}

/// One finished span: a node of a query's trace tree.
#[derive(Clone, PartialEq, Debug)]
pub struct SpanEvent {
    /// The trace (query) this span belongs to.
    pub trace: u64,
    /// Span id, unique within the trace (1-based).
    pub span: u32,
    /// Parent span id; 0 for a root span.
    pub parent: u32,
    /// Static phase name (e.g. `serve/queue`, `shard/leg`).
    pub name: &'static str,
    /// Free-form detail (e.g. the epoch range of a shard leg). Empty when
    /// the phase needs none.
    pub label: String,
    /// Monotonic tick ([`now_ticks`]) the span opened.
    pub start: u64,
    /// Monotonic tick the span finished.
    pub end: u64,
    /// Device IO attributed to this span (exclusive of children).
    pub io: IoDelta,
    /// Vertices / cells the span visited (exclusive of children).
    pub visited: u64,
    /// Frontier seeds handed into this span (cross-shard legs record the
    /// `FrontierHandoff` seed count here).
    pub seeds: u64,
}

impl SpanEvent {
    /// Deterministic size estimate used by the flight recorder's byte
    /// accounting: the fixed footprint plus the label's heap bytes.
    pub fn approx_bytes(&self) -> u64 {
        (std::mem::size_of::<SpanEvent>() + self.label.len()) as u64
    }

    /// Wall time the span covered, in ticks (nanoseconds).
    pub fn ticks(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// One-line rendering for flight-recorder dumps.
    pub fn render(&self) -> String {
        let mut s = format!(
            "trace={} span={} parent={} {}",
            self.trace, self.span, self.parent, self.name
        );
        if !self.label.is_empty() {
            s.push_str(&format!(" [{}]", self.label));
        }
        s.push_str(&format!(
            " ticks={} reads={}r+{}s writes={}r+{}s hits={}",
            self.ticks(),
            self.io.random_reads,
            self.io.seq_reads,
            self.io.random_writes,
            self.io.seq_writes,
            self.io.cache_hits,
        ));
        if self.seeds > 0 {
            s.push_str(&format!(" seeds={}", self.seeds));
        }
        if self.visited > 0 {
            s.push_str(&format!(" visited={}", self.visited));
        }
        s
    }
}

/// Shared state of one enabled trace.
#[derive(Debug)]
struct TraceCore {
    trace_id: u64,
    next_span: AtomicU32,
    /// Innermost open span id (0 = root level); the parent of the next
    /// span opened on this trace.
    ambient: AtomicU32,
    events: Mutex<Vec<SpanEvent>>,
    recorder: Option<Arc<FlightRecorder>>,
}

/// The per-query recorder handle carried inside the request envelope.
///
/// Cheap to clone (one `Arc` bump when enabled, nothing when disabled) and
/// cheap to ignore: the default tracer is *off* and every method on it is
/// a no-op. See the module docs for the accounting contract.
#[derive(Clone, Default, Debug)]
pub struct Tracer {
    core: Option<Arc<TraceCore>>,
}

impl Tracer {
    /// The disabled tracer: records nothing, allocates nothing.
    pub fn off() -> Self {
        Self::default()
    }

    /// An enabled tracer collecting spans in memory under `trace_id`.
    pub fn enabled(trace_id: u64) -> Self {
        Self::build(trace_id, None)
    }

    /// An enabled tracer that additionally mirrors every finished span
    /// into `recorder`.
    pub fn recorded(trace_id: u64, recorder: Arc<FlightRecorder>) -> Self {
        Self::build(trace_id, Some(recorder))
    }

    fn build(trace_id: u64, recorder: Option<Arc<FlightRecorder>>) -> Self {
        Self {
            core: Some(Arc::new(TraceCore {
                trace_id,
                next_span: AtomicU32::new(1),
                ambient: AtomicU32::new(0),
                events: Mutex::new(Vec::new()),
                recorder,
            })),
        }
    }

    /// Whether spans opened on this tracer record anything.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// The trace id, 0 when disabled.
    pub fn trace_id(&self) -> u64 {
        self.core.as_ref().map_or(0, |c| c.trace_id)
    }

    /// Opens a span named `name`, nested under the innermost open span.
    /// On a disabled tracer this is free and the returned span is inert.
    pub fn span(&self, name: &'static str) -> Span {
        match &self.core {
            None => Span::inert(name),
            Some(core) => {
                let id = core.next_span.fetch_add(1, Ordering::Relaxed);
                let parent = core.ambient.swap(id, Ordering::Relaxed);
                Span {
                    core: Some(Arc::clone(core)),
                    id,
                    parent,
                    name,
                    label: String::new(),
                    start: now_ticks(),
                    io: IoDelta::default(),
                    visited: 0,
                    seeds: 0,
                }
            }
        }
    }

    /// Every span finished on this trace so far, in finish order.
    pub fn events(&self) -> Vec<SpanEvent> {
        match &self.core {
            None => Vec::new(),
            Some(core) => core.events.lock().expect("trace events poisoned").clone(),
        }
    }

    /// Drains the finished spans, leaving the trace collecting afresh.
    pub fn take_events(&self) -> Vec<SpanEvent> {
        match &self.core {
            None => Vec::new(),
            Some(core) => std::mem::take(&mut core.events.lock().expect("trace events poisoned")),
        }
    }
}

/// An open span; finishing it (explicitly or by drop) records one
/// [`SpanEvent`]. Inert when minted by a disabled tracer.
#[derive(Debug)]
pub struct Span {
    core: Option<Arc<TraceCore>>,
    id: u32,
    parent: u32,
    name: &'static str,
    label: String,
    start: u64,
    io: IoDelta,
    visited: u64,
    seeds: u64,
}

impl Span {
    fn inert(name: &'static str) -> Self {
        Self {
            core: None,
            id: 0,
            parent: 0,
            name,
            label: String::new(),
            start: 0,
            io: IoDelta::default(),
            visited: 0,
            seeds: 0,
        }
    }

    /// Whether this span records anything.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Attaches a free-form detail label (no-op when inert — the closure
    /// form avoids formatting cost on the disabled path).
    pub fn label_with(&mut self, f: impl FnOnce() -> String) {
        if self.core.is_some() {
            self.label = f();
        }
    }

    /// Adds a device-IO delta to this span's attribution.
    pub fn add_io(&mut self, delta: IoDelta) {
        if self.core.is_some() {
            self.io = self.io.merged(&delta);
        }
    }

    /// Adds visited-vertex work to this span's attribution.
    pub fn add_visited(&mut self, n: u64) {
        if self.core.is_some() {
            self.visited += n;
        }
    }

    /// Records how many frontier seeds entered this span (cross-shard leg
    /// handoff counts).
    pub fn set_seeds(&mut self, n: u64) {
        if self.core.is_some() {
            self.seeds = n;
        }
    }

    /// Finishes the span now (equivalent to dropping it, made explicit for
    /// call sites where the scope outlives the phase).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(core) = self.core.take() else {
            return;
        };
        // Restore the ambient parent for the next sibling. Structured
        // finish order makes this exact; a stale value only mis-parents
        // later spans, it never corrupts counters.
        core.ambient.store(self.parent, Ordering::Relaxed);
        let event = SpanEvent {
            trace: core.trace_id,
            span: self.id,
            parent: self.parent,
            name: self.name,
            label: std::mem::take(&mut self.label),
            start: self.start,
            end: now_ticks(),
            io: self.io,
            visited: self.visited,
            seeds: self.seeds,
        };
        if let Some(recorder) = &core.recorder {
            recorder.record(event.clone());
        }
        core.events
            .lock()
            .expect("trace events poisoned")
            .push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::off();
        assert!(!t.is_enabled());
        assert_eq!(t.trace_id(), 0);
        let mut s = t.span("anything");
        s.add_io(IoDelta::reads(5, 3));
        s.set_seeds(9);
        s.label_with(|| unreachable!("label closure must not run when disabled"));
        s.finish();
        assert!(t.events().is_empty());
    }

    #[test]
    fn spans_nest_under_the_ambient_parent() {
        let t = Tracer::enabled(7);
        {
            let root = t.span("root");
            {
                let mut leg = t.span("leg");
                leg.add_io(IoDelta::reads(2, 40));
                leg.set_seeds(3);
            }
            {
                let mut leg = t.span("leg");
                leg.add_io(IoDelta::reads(1, 0));
                leg.label_with(|| "epoch [5,9)".into());
            }
            root.finish();
        }
        let events = t.events();
        assert_eq!(events.len(), 3);
        let root = events.iter().find(|e| e.name == "root").unwrap();
        assert_eq!(root.parent, 0);
        let legs: Vec<_> = events.iter().filter(|e| e.name == "leg").collect();
        assert_eq!(legs.len(), 2);
        for leg in &legs {
            assert_eq!(leg.parent, root.span, "legs nest under the root");
            assert_eq!(leg.trace, 7);
        }
        assert_eq!(legs[0].seeds, 3);
        assert_eq!(legs[1].label, "epoch [5,9)");
        let total: u64 = legs.iter().map(|e| e.io.total_reads()).sum();
        assert_eq!(total, 43);
    }

    #[test]
    fn siblings_after_a_finished_child_re_parent_correctly() {
        let t = Tracer::enabled(1);
        let a = t.span("a");
        let b = t.span("b");
        drop(b);
        let c = t.span("c"); // sibling of b, child of a
        drop(c);
        drop(a);
        let events = t.events();
        let a_id = events.iter().find(|e| e.name == "a").unwrap().span;
        assert!(events
            .iter()
            .filter(|e| e.name != "a")
            .all(|e| e.parent == a_id));
    }

    #[test]
    fn take_events_drains() {
        let t = Tracer::enabled(3);
        t.span("x").finish();
        assert_eq!(t.take_events().len(), 1);
        assert!(t.events().is_empty());
    }

    #[test]
    fn ticks_are_monotonic() {
        let a = now_ticks();
        let b = now_ticks();
        assert!(b >= a);
    }

    #[test]
    fn render_mentions_the_counters() {
        let e = SpanEvent {
            trace: 4,
            span: 2,
            parent: 1,
            name: "shard/leg",
            label: "[0,8)".into(),
            start: 10,
            end: 30,
            io: IoDelta::reads(5, 20),
            visited: 11,
            seeds: 6,
        };
        let line = e.render();
        assert!(line.contains("shard/leg"), "{line}");
        assert!(line.contains("[0,8)"), "{line}");
        assert!(line.contains("reads=5r+20s"), "{line}");
        assert!(line.contains("seeds=6"), "{line}");
        assert!(line.contains("visited=11"), "{line}");
        assert!(e.approx_bytes() > e.label.len() as u64);
        assert_eq!(e.ticks(), 20);
    }
}
