//! The trajectory store: the full movement dataset over a common horizon.

use crate::trajectory::{Trajectory, TrajectorySegment};
use reach_core::{Environment, IndexError, ObjectId, Point, Time, TimeInterval};

/// A complete contact dataset's raw movement data: one trajectory per object,
/// all spanning the same horizon `[0, horizon)`.
///
/// Objects are dense (`ObjectId(0) .. ObjectId(n-1)`), which every index in
/// the workspace exploits for vector-indexed lookups.
#[derive(Clone, Debug)]
pub struct TrajectoryStore {
    env: Environment,
    horizon: Time,
    trajectories: Vec<Trajectory>,
}

impl TrajectoryStore {
    /// Builds a store, validating that trajectory `i` belongs to object `i`
    /// and that every trajectory covers exactly `[0, horizon)`.
    pub fn new(env: Environment, trajectories: Vec<Trajectory>) -> Result<Self, IndexError> {
        let horizon = trajectories
            .first()
            .map(|t| t.positions.len() as Time)
            .unwrap_or(0);
        for (i, t) in trajectories.iter().enumerate() {
            if t.object.index() != i {
                return Err(IndexError::Corrupt(format!(
                    "trajectory at slot {i} belongs to {}; ids must be dense",
                    t.object
                )));
            }
            if t.start != 0 || t.positions.len() as Time != horizon {
                return Err(IndexError::Corrupt(format!(
                    "trajectory of {} covers {:?}, expected [0, {horizon})",
                    t.object,
                    t.interval()
                )));
            }
        }
        Ok(Self {
            env,
            horizon,
            trajectories,
        })
    }

    /// The environment objects move in.
    pub fn environment(&self) -> Environment {
        self.env
    }

    /// Number of objects `|O|`.
    pub fn num_objects(&self) -> usize {
        self.trajectories.len()
    }

    /// Horizon `|T|`: trajectories cover ticks `0 .. horizon`.
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// The full horizon as a closed interval `[0, horizon-1]`.
    pub fn horizon_interval(&self) -> TimeInterval {
        TimeInterval::new(0, self.horizon.saturating_sub(1))
    }

    /// The trajectory of `o`.
    pub fn trajectory(&self, o: ObjectId) -> Result<&Trajectory, IndexError> {
        self.trajectories
            .get(o.index())
            .ok_or(IndexError::UnknownObject(o))
    }

    /// Position of `o` at tick `t`.
    pub fn position(&self, o: ObjectId, t: Time) -> Result<Point, IndexError> {
        self.trajectory(o)?
            .position_at(t)
            .ok_or(IndexError::IntervalOutOfRange {
                requested: TimeInterval::instant(t),
                horizon: self.horizon,
            })
    }

    /// All trajectories.
    pub fn iter(&self) -> impl Iterator<Item = &Trajectory> {
        self.trajectories.iter()
    }

    /// The segment set `R(w)` of every object clipped to `w` (paper §4).
    pub fn segments(&self, window: TimeInterval) -> Vec<TrajectorySegment<'_>> {
        self.trajectories
            .iter()
            .filter_map(|t| t.segment(window))
            .collect()
    }

    /// Positions of every object at tick `t` (object id = slot index).
    /// Returns `None` past the horizon.
    pub fn snapshot(&self, t: Time) -> Option<Vec<Point>> {
        if t >= self.horizon {
            return None;
        }
        Some(
            self.trajectories
                .iter()
                .map(|tr| tr.positions[t as usize])
                .collect(),
        )
    }

    /// Raw dataset size in bytes if stored as packed `(f32, f32)` samples —
    /// the quantity Table 2 of the paper reports per dataset.
    pub fn raw_size_bytes(&self) -> u64 {
        self.num_objects() as u64 * u64::from(self.horizon) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TrajectoryStore {
        let env = Environment::square(100.0);
        let trajs = (0..3)
            .map(|i| {
                Trajectory::new(
                    ObjectId(i),
                    0,
                    (0..5)
                        .map(|t| Point::new(i as f32 * 10.0 + t as f32, 0.0))
                        .collect(),
                )
            })
            .collect();
        TrajectoryStore::new(env, trajs).expect("valid store")
    }

    #[test]
    fn store_basics() {
        let s = store();
        assert_eq!(s.num_objects(), 3);
        assert_eq!(s.horizon(), 5);
        assert_eq!(s.horizon_interval(), TimeInterval::new(0, 4));
        assert_eq!(s.raw_size_bytes(), 3 * 5 * 8);
    }

    #[test]
    fn position_lookup() {
        let s = store();
        assert_eq!(s.position(ObjectId(2), 3).unwrap(), Point::new(23.0, 0.0));
        assert!(s.position(ObjectId(2), 5).is_err());
        assert!(matches!(
            s.position(ObjectId(9), 0),
            Err(IndexError::UnknownObject(ObjectId(9)))
        ));
    }

    #[test]
    fn segments_clip_every_object() {
        let s = store();
        let segs = s.segments(TimeInterval::new(1, 2));
        assert_eq!(segs.len(), 3);
        for (i, seg) in segs.iter().enumerate() {
            assert_eq!(seg.object, ObjectId(i as u32));
            assert_eq!(seg.positions.len(), 2);
        }
    }

    #[test]
    fn snapshot_at_tick() {
        let s = store();
        let snap = s.snapshot(4).expect("inside horizon");
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[1], Point::new(14.0, 0.0));
        assert!(s.snapshot(5).is_none());
    }

    #[test]
    fn non_dense_ids_rejected() {
        let env = Environment::square(10.0);
        let t = Trajectory::new(ObjectId(1), 0, vec![Point::default()]);
        assert!(TrajectoryStore::new(env, vec![t]).is_err());
    }

    #[test]
    fn ragged_horizons_rejected() {
        let env = Environment::square(10.0);
        let a = Trajectory::new(ObjectId(0), 0, vec![Point::default(); 4]);
        let b = Trajectory::new(ObjectId(1), 0, vec![Point::default(); 5]);
        assert!(TrajectoryStore::new(env, vec![a, b]).is_err());
    }

    #[test]
    fn nonzero_start_rejected() {
        let env = Environment::square(10.0);
        let a = Trajectory::new(ObjectId(0), 1, vec![Point::default(); 4]);
        assert!(TrajectoryStore::new(env, vec![a]).is_err());
    }

    #[test]
    fn empty_store_is_valid() {
        let env = Environment::square(10.0);
        let s = TrajectoryStore::new(env, vec![]).unwrap();
        assert_eq!(s.num_objects(), 0);
        assert_eq!(s.horizon(), 0);
    }
}
