//! Spatiotemporal trajectory joins.
//!
//! The paper builds contact networks with a *window trajectory join*
//! `P ⋈_dT Q` (§4): all pairs of objects within `d_T` of each other during a
//! window, produced in time-sweep order so consumers can terminate early —
//! the join strategy of Arumugam & Jermaine's CPA join \[1\]. Our positions
//! are per-tick samples (the TEN model is per-instance anyway), so the sweep
//! advances tick by tick and prunes candidate pairs with a uniform spatial
//! hash of cell width `d_T`.

use crate::store::TrajectoryStore;
use reach_core::{ContactEvent, Coord, ObjectId, Point, TimeInterval};
use std::collections::HashMap;

/// Reusable spatial hash over points with cell width `cell`.
///
/// Candidates for the within-`d` predicate are found by probing the 3×3
/// neighborhood of a point's cell, which is exhaustive when `cell ≥ d`.
#[derive(Debug)]
pub struct SpatialHash {
    cell: f64,
    buckets: HashMap<(i32, i32), Vec<u32>>,
}

impl SpatialHash {
    /// Creates an empty hash with the given cell width (metres); `cell` must
    /// be positive.
    pub fn new(cell: Coord) -> Self {
        assert!(cell > 0.0, "spatial hash cell width must be positive");
        Self {
            cell: f64::from(cell),
            buckets: HashMap::new(),
        }
    }

    #[inline]
    fn key(&self, p: Point) -> (i32, i32) {
        (
            (f64::from(p.x) / self.cell).floor() as i32,
            (f64::from(p.y) / self.cell).floor() as i32,
        )
    }

    /// Removes all points but keeps bucket allocations for reuse.
    pub fn clear(&mut self) {
        for v in self.buckets.values_mut() {
            v.clear();
        }
    }

    /// Inserts a point tagged with an arbitrary `u32` payload (object id,
    /// slot index, …).
    pub fn insert(&mut self, tag: u32, p: Point) {
        self.buckets.entry(self.key(p)).or_default().push(tag);
    }

    /// Calls `f(tag)` for every point in the 3×3 neighborhood of `p`'s cell
    /// (including `p`'s own cell). Tags inserted for `p` itself are included;
    /// callers filter.
    pub fn for_neighbors<F: FnMut(u32)>(&self, p: Point, mut f: F) {
        let (cx, cy) = self.key(p);
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(v) = self.buckets.get(&(cx + dx, cy + dy)) {
                    for &tag in v {
                        f(tag);
                    }
                }
            }
        }
    }
}

/// Emits every unordered pair `(i, j)` with `i < j` among `points` whose
/// distance is ≤ `threshold`. `points[k]` is tagged `k`. Pairs are pushed to
/// `out` (cleared first); `scratch` is the reusable hash.
pub fn proximity_pairs(
    points: &[Point],
    threshold: Coord,
    scratch: &mut SpatialHash,
    out: &mut Vec<(u32, u32)>,
) {
    out.clear();
    scratch.clear();
    for (i, &p) in points.iter().enumerate() {
        scratch.insert(i as u32, p);
    }
    for (i, &p) in points.iter().enumerate() {
        let i = i as u32;
        scratch.for_neighbors(p, |j| {
            if j > i && points[j as usize].within(&p, threshold) {
                out.push((i, j));
            }
        });
    }
    out.sort_unstable();
}

/// The window self-join `R(w) ⋈_dT R(w)` over a trajectory store: every
/// instantaneous proximity event inside `window`, in tick order.
///
/// This is the paper's materialization step for `C'` (§4); the
/// [`crate::join::sweep_join`] variant supports the early termination the
/// indexes rely on.
pub fn window_self_join(
    store: &TrajectoryStore,
    window: TimeInterval,
    threshold: Coord,
) -> Vec<ContactEvent> {
    let mut events = Vec::new();
    sweep_join(store, window, threshold, |ev| {
        events.push(ev);
        true
    });
    events
}

/// Time-sweeping self-join: calls `visit` for every proximity event in tick
/// order; `visit` returns `false` to terminate the sweep early (the paper's
/// "terminate whenever a new object … is discovered").
pub fn sweep_join<F: FnMut(ContactEvent) -> bool>(
    store: &TrajectoryStore,
    window: TimeInterval,
    threshold: Coord,
    mut visit: F,
) {
    let Some(window) = window.intersect(&store.horizon_interval()) else {
        return;
    };
    let n = store.num_objects();
    if n == 0 {
        return;
    }
    let mut hash = SpatialHash::new(threshold.max(1e-3));
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    let mut points: Vec<Point> = Vec::with_capacity(n);
    for t in window.ticks() {
        points.clear();
        for tr in store.iter() {
            points.push(tr.positions[t as usize]);
        }
        proximity_pairs(&points, threshold, &mut hash, &mut pairs);
        for &(a, b) in pairs.iter() {
            let ev = ContactEvent::new(t, ObjectId(a), ObjectId(b));
            if !visit(ev) {
                return;
            }
        }
    }
}

/// Squared closest-point-of-approach distance between two objects moving
/// linearly across one tick: object 1 from `p1` with per-tick displacement
/// `v1`, object 2 from `p2` with `v2`. Returns the minimum squared distance
/// over the unit time step `[0, 1]`.
///
/// This is the primitive of the CPA join \[1\] that the paper adopts; the
/// discrete indexes only need sampled positions, but the non-immediate
/// extension and the generators use it to validate interpolation fidelity.
pub fn cpa_distance_sq(p1: Point, v1: (f64, f64), p2: Point, v2: (f64, f64)) -> f64 {
    let dx = f64::from(p1.x) - f64::from(p2.x);
    let dy = f64::from(p1.y) - f64::from(p2.y);
    let dvx = v1.0 - v2.0;
    let dvy = v1.1 - v2.1;
    let dv2 = dvx * dvx + dvy * dvy;
    // Relative motion is (dx + t·dvx, dy + t·dvy); minimize |·|² over [0,1].
    let t = if dv2 <= f64::EPSILON {
        0.0
    } else {
        (-(dx * dvx + dy * dvy) / dv2).clamp(0.0, 1.0)
    };
    let mx = dx + t * dvx;
    let my = dy + t * dvy;
    mx * mx + my * my
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_core::{Environment, Time};

    fn store_from_rows(rows: Vec<Vec<(f32, f32)>>) -> TrajectoryStore {
        // rows[i] = positions of object i over the horizon
        let env = Environment::square(1000.0);
        let trajs = rows
            .into_iter()
            .enumerate()
            .map(|(i, ps)| {
                crate::trajectory::Trajectory::new(
                    ObjectId(i as u32),
                    0,
                    ps.into_iter().map(|(x, y)| Point::new(x, y)).collect(),
                )
            })
            .collect();
        TrajectoryStore::new(env, trajs).expect("valid")
    }

    #[test]
    fn proximity_pairs_basic() {
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 4.0),  // 5m from 0
            Point::new(50.0, 0.0), // far
        ];
        let mut hash = SpatialHash::new(5.0);
        let mut out = Vec::new();
        proximity_pairs(&points, 5.0, &mut hash, &mut out);
        assert_eq!(out, vec![(0, 1)]);
    }

    #[test]
    fn proximity_pairs_matches_brute_force() {
        // Deterministic lattice-with-jitter layout.
        let points: Vec<Point> = (0..60)
            .map(|i| {
                let x = (i % 8) as f32 * 7.3 + (i as f32 * 0.17).sin() * 3.0;
                let y = (i / 8) as f32 * 6.1 + (i as f32 * 0.29).cos() * 3.0;
                Point::new(x, y)
            })
            .collect();
        let d = 8.0f32;
        let mut hash = SpatialHash::new(d);
        let mut out = Vec::new();
        proximity_pairs(&points, d, &mut hash, &mut out);
        let mut brute = Vec::new();
        for i in 0..points.len() as u32 {
            for j in (i + 1)..points.len() as u32 {
                if points[i as usize].within(&points[j as usize], d) {
                    brute.push((i, j));
                }
            }
        }
        assert_eq!(out, brute);
    }

    #[test]
    fn window_join_replays_figure_1() {
        // Figure 1 of the paper: o1-o2 contact at t=0 and [2,3]; o2-o4 at
        // t=1; o3-o4 during [1,2]. Encode with 1-D positions, d_T = 1.
        // Build positions so exactly those pairs are within distance 1.
        let far = |k: f32| 100.0 * k;
        let rows = vec![
            // o0 unused filler object kept far away from everyone
            vec![
                (far(9.0), 0.0),
                (far(9.0), 0.0),
                (far(9.0), 0.0),
                (far(9.0), 0.0),
            ],
            // o1
            vec![(0.0, 0.0), (far(1.0), 0.0), (10.0, 0.0), (10.0, 0.0)],
            // o2: next to o1 at t=0, next to o4 at t=1, back to o1 at t∈[2,3]
            vec![(0.5, 0.0), (20.0, 0.0), (10.5, 0.0), (10.5, 0.0)],
            // o3: near o4 during [1,2] (1.0m from o4, 1.5m from o2 at t=1)
            vec![(far(2.0), 0.0), (21.5, 0.0), (40.0, 0.0), (far(2.0), 0.0)],
            // o4
            vec![(far(3.0), 0.0), (20.5, 0.0), (40.5, 0.0), (far(3.0), 0.0)],
        ];
        let store = store_from_rows(rows);
        let evs = window_self_join(&store, TimeInterval::new(0, 3), 1.0);
        let as_tuples: Vec<(Time, u32, u32)> = evs.iter().map(|e| (e.t, e.a.0, e.b.0)).collect();
        assert_eq!(
            as_tuples,
            vec![
                (0, 1, 2),
                (1, 2, 4),
                (1, 3, 4),
                (2, 1, 2),
                (2, 3, 4),
                (3, 1, 2)
            ]
        );
    }

    #[test]
    fn sweep_join_early_termination() {
        let rows = vec![
            vec![(0.0, 0.0), (0.0, 0.0), (0.0, 0.0)],
            vec![(0.5, 0.0), (0.5, 0.0), (0.5, 0.0)],
        ];
        let store = store_from_rows(rows);
        let mut seen = 0;
        sweep_join(&store, TimeInterval::new(0, 2), 1.0, |_| {
            seen += 1;
            false // stop immediately
        });
        assert_eq!(seen, 1);
    }

    #[test]
    fn join_window_clipped_to_horizon() {
        let rows = vec![vec![(0.0, 0.0), (0.0, 0.0)], vec![(0.5, 0.0), (90.0, 0.0)]];
        let store = store_from_rows(rows);
        // Window exceeding the horizon must not panic.
        let evs = window_self_join(&store, TimeInterval::new(0, 100), 1.0);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].t, 0);
    }

    #[test]
    fn cpa_detects_midstep_approach() {
        // Two objects crossing: far apart at both endpoints, close at t=0.5.
        let p1 = Point::new(0.0, 0.0);
        let v1 = (10.0, 0.0);
        let p2 = Point::new(10.0, 1.0);
        let v2 = (-10.0, 0.0);
        let d2 = cpa_distance_sq(p1, v1, p2, v2);
        assert!((d2 - 1.0).abs() < 1e-9, "closest approach is 1m at t=0.5");
        // Sampled endpoints never get closer than sqrt(10² + 1).
        assert!(p1.distance(&p2) > 10.0);
    }

    #[test]
    fn cpa_stationary_pair() {
        let p1 = Point::new(0.0, 0.0);
        let p2 = Point::new(3.0, 4.0);
        let d2 = cpa_distance_sq(p1, (0.0, 0.0), p2, (0.0, 0.0));
        assert!((d2 - 25.0).abs() < 1e-9);
    }

    #[test]
    fn cpa_clamps_to_step() {
        // Objects diverging: the minimum over [0,1] is at t=0.
        let d2 = cpa_distance_sq(
            Point::new(0.0, 0.0),
            (-5.0, 0.0),
            Point::new(2.0, 0.0),
            (5.0, 0.0),
        );
        assert!((d2 - 4.0).abs() < 1e-9);
    }
}
