//! # reach-traj
//!
//! Trajectory management for spatiotemporal contact datasets: the raw
//! per-tick movement data ([`Trajectory`], [`TrajectoryStore`]) and the
//! spatiotemporal joins (`R(w) ⋈_dT R(w)`, [`join`]) from which contact
//! networks are materialized (paper §3–4).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod join;
pub mod store;
pub mod trajectory;

pub use join::{cpa_distance_sq, proximity_pairs, sweep_join, window_self_join, SpatialHash};
pub use store::TrajectoryStore;
pub use trajectory::{Trajectory, TrajectorySegment};
