//! Trajectories: per-tick position samples of a moving object.

use reach_core::{Mbr, ObjectId, Point, Time, TimeInterval};

/// The movement history of one object: a position sample for every tick of
/// `[start, start + positions.len())` (paper §4: `r_i = {(v⃗_1, t_1), …}`).
#[derive(Clone, Debug, PartialEq)]
pub struct Trajectory {
    /// The object this trajectory belongs to.
    pub object: ObjectId,
    /// Tick of the first sample.
    pub start: Time,
    /// One position per tick.
    pub positions: Vec<Point>,
}

impl Trajectory {
    /// Creates a trajectory. Panics if there are no samples.
    pub fn new(object: ObjectId, start: Time, positions: Vec<Point>) -> Self {
        assert!(
            !positions.is_empty(),
            "trajectory of {object} must contain at least one sample"
        );
        Self {
            object,
            start,
            positions,
        }
    }

    /// The closed interval of ticks covered by this trajectory.
    pub fn interval(&self) -> TimeInterval {
        TimeInterval::new(self.start, self.start + (self.positions.len() as Time - 1))
    }

    /// Position at tick `t`, or `None` outside the sampled range.
    #[inline]
    pub fn position_at(&self, t: Time) -> Option<Point> {
        let idx = t.checked_sub(self.start)? as usize;
        self.positions.get(idx).copied()
    }

    /// The trajectory segment `r_i(w)` — the samples whose ticks fall in
    /// `window` (paper §4). `None` when the window misses the trajectory.
    pub fn segment(&self, window: TimeInterval) -> Option<TrajectorySegment<'_>> {
        let iv = self.interval().intersect(&window)?;
        let lo = (iv.start - self.start) as usize;
        let hi = (iv.end - self.start) as usize;
        Some(TrajectorySegment {
            object: self.object,
            start: iv.start,
            positions: &self.positions[lo..=hi],
        })
    }

    /// Bounding rectangle of the full trajectory.
    pub fn mbr(&self) -> Mbr {
        Mbr::of_points(self.positions.iter().copied())
    }
}

/// A borrowed slice of a trajectory restricted to a time window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrajectorySegment<'a> {
    /// Owning object.
    pub object: ObjectId,
    /// Tick of `positions\[0\]`.
    pub start: Time,
    /// Contiguous samples.
    pub positions: &'a [Point],
}

impl<'a> TrajectorySegment<'a> {
    /// Closed tick interval covered by the segment.
    pub fn interval(&self) -> TimeInterval {
        TimeInterval::new(self.start, self.start + (self.positions.len() as Time - 1))
    }

    /// Position at tick `t`, or `None` outside the segment.
    #[inline]
    pub fn position_at(&self, t: Time) -> Option<Point> {
        let idx = t.checked_sub(self.start)? as usize;
        self.positions.get(idx).copied()
    }

    /// Iterator of `(tick, position)` pairs.
    pub fn samples(&self) -> impl Iterator<Item = (Time, Point)> + 'a {
        let start = self.start;
        self.positions
            .iter()
            .enumerate()
            .map(move |(i, &p)| (start + i as Time, p))
    }

    /// Bounding rectangle of the segment (the object's MBR in ReachGrid
    /// query processing, before `d_T` inflation).
    pub fn mbr(&self) -> Mbr {
        Mbr::of_points(self.positions.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj() -> Trajectory {
        Trajectory::new(
            ObjectId(3),
            10,
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(3.0, 5.0),
            ],
        )
    }

    #[test]
    fn interval_and_position_lookup() {
        let t = traj();
        assert_eq!(t.interval(), TimeInterval::new(10, 13));
        assert_eq!(t.position_at(10), Some(Point::new(0.0, 0.0)));
        assert_eq!(t.position_at(13), Some(Point::new(3.0, 5.0)));
        assert_eq!(t.position_at(9), None);
        assert_eq!(t.position_at(14), None);
    }

    #[test]
    fn segment_clips_to_window() {
        let t = traj();
        let s = t.segment(TimeInterval::new(11, 12)).expect("overlap");
        assert_eq!(s.interval(), TimeInterval::new(11, 12));
        assert_eq!(s.positions.len(), 2);
        assert_eq!(s.position_at(11), Some(Point::new(1.0, 0.0)));
        assert_eq!(s.position_at(10), None);
    }

    #[test]
    fn segment_window_larger_than_trajectory() {
        let t = traj();
        let s = t.segment(TimeInterval::new(0, 100)).expect("overlap");
        assert_eq!(s.interval(), t.interval());
        assert_eq!(s.positions.len(), 4);
    }

    #[test]
    fn segment_disjoint_window_is_none() {
        let t = traj();
        assert!(t.segment(TimeInterval::new(0, 9)).is_none());
        assert!(t.segment(TimeInterval::new(14, 20)).is_none());
    }

    #[test]
    fn samples_enumerate_ticks() {
        let t = traj();
        let s = t.segment(TimeInterval::new(12, 13)).unwrap();
        let got: Vec<(Time, Point)> = s.samples().collect();
        assert_eq!(
            got,
            vec![(12, Point::new(2.0, 0.0)), (13, Point::new(3.0, 5.0))]
        );
    }

    #[test]
    fn mbr_covers_all_samples() {
        let t = traj();
        let m = t.mbr();
        assert_eq!(m.min, Point::new(0.0, 0.0));
        assert_eq!(m.max, Point::new(3.0, 5.0));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_trajectory_rejected() {
        let _ = Trajectory::new(ObjectId(0), 0, vec![]);
    }
}
