//! # streach — spatiotemporal contact-network reachability
//!
//! A complete Rust implementation of Shirani-Mehr, Banaei-Kashani & Shahabi,
//! *Efficient Reachability Query Evaluation in Large Spatiotemporal Contact
//! Datasets* (VLDB 2012): the **ReachGrid** and **ReachGraph** indexes, the
//! contact-network substrate they are built on, the baselines they are
//! evaluated against, and the paper's §7 extensions.
//!
//! This facade crate re-exports the public API of every workspace crate:
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | ticks, intervals, geometry, contacts, queries, `ReachabilityIndex` |
//! | [`storage`] | simulated disk, pager, IO accounting |
//! | [`traj`] | trajectories and spatiotemporal joins |
//! | [`mobility`] | RWP / road-network / sparse-GPS generators, workloads |
//! | [`contact`] | contact extraction, TEN→DN reduction, multi-resolution, oracle |
//! | [`grid`] | ReachGrid index + SPJ baseline |
//! | [`graph`] | ReachGraph index + E-DFS/E-BFS/B-BFS/BM-BFS |
//! | [`baselines`] | GRAIL (memory and disk) |
//! | [`ext`] | uncertain contacts (U-ReachGraph), non-immediate contacts |
//!
//! ## Quickstart
//!
//! ```
//! use streach::prelude::*;
//!
//! // A tiny random-waypoint world.
//! let store = RwpConfig {
//!     env: Environment::square(500.0),
//!     num_objects: 30,
//!     horizon: 400,
//!     ..RwpConfig::default()
//! }
//! .generate(7);
//!
//! // Build both indexes.
//! let mut grid = ReachGrid::build(
//!     &store,
//!     GridParams { cell_size: 100.0, threshold: 25.0, ..GridParams::default() },
//! )
//! .expect("grid construction succeeds");
//! let dn = DnGraph::build(&store, 25.0);
//! let mr = MultiRes::build(&dn, &DEFAULT_LEVELS);
//! let mut graph = ReachGraph::build(&dn, &mr, GraphParams::default())
//!     .expect("graph construction succeeds");
//!
//! // Both agree on every query.
//! let q = Query::new(ObjectId(0), ObjectId(5), TimeInterval::new(10, 300));
//! let a = grid.evaluate(&q).expect("grid query evaluates");
//! let b = graph.evaluate(&q).expect("graph query evaluates");
//! assert_eq!(a.reachable(), b.reachable());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use reach_baselines as baselines;
pub use reach_contact as contact;
pub use reach_core as core;
pub use reach_ext as ext;
pub use reach_graph as graph;
pub use reach_grid as grid;
pub use reach_mobility as mobility;
pub use reach_storage as storage;
pub use reach_traj as traj;

/// Everything needed to build and query the two indexes.
pub mod prelude {
    pub use reach_baselines::{GrailDisk, GrailMem};
    pub use reach_contact::{DnGraph, MultiRes, Oracle, DEFAULT_LEVELS};
    pub use reach_core::{
        Contact, ContactEvent, Environment, IndexError, Mbr, ObjectId, Point, Query, QueryOutcome,
        QueryResult, ReachabilityIndex, Time, TimeInterval,
    };
    pub use reach_ext::{NonImmediateIndex, UReachGraph, UncertainOracle};
    pub use reach_graph::{GraphParams, MemoryHn, ReachGraph, TraversalKind};
    pub use reach_grid::{GridParams, ReachGrid, Spj};
    pub use reach_mobility::{RoadNetwork, RwpConfig, VehicleConfig, WorkloadConfig};
    pub use reach_storage::{DiskSim, IoStats, Pager};
    pub use reach_traj::{Trajectory, TrajectoryStore};
}
