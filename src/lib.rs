//! # streach — spatiotemporal contact-network reachability
//!
//! A complete Rust implementation of Shirani-Mehr, Banaei-Kashani & Shahabi,
//! *Efficient Reachability Query Evaluation in Large Spatiotemporal Contact
//! Datasets* (VLDB 2012): the **ReachGrid** and **ReachGraph** indexes, the
//! contact-network substrate they are built on, the baselines they are
//! evaluated against, and the paper's §7 extensions.
//!
//! This facade crate re-exports the public API of every workspace crate:
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | ticks, intervals, geometry, contacts, queries, `ReachabilityIndex` |
//! | [`storage`] | pluggable block devices (sim/file/mmap), pager, IO accounting |
//! | [`traj`] | trajectories and spatiotemporal joins |
//! | [`mobility`] | RWP / road-network / sparse-GPS generators, workloads |
//! | [`contact`] | contact extraction, trace ingestion, TEN→DN reduction, multi-resolution, oracle |
//! | [`grid`] | ReachGrid index + SPJ baseline |
//! | [`graph`] | ReachGraph index + E-DFS/E-BFS/B-BFS/BM-BFS |
//! | [`baselines`] | GRAIL (memory and disk) |
//! | [`live`] | continuous ingestion: append log, delta DN, watermark compaction, epoch-sharded timeline |
//! | [`ext`] | §7 extensions + decay workloads: uncertain contacts (U-ReachGraph), non-immediate contacts, decay-weighted / top-k reachability with its brute-force oracle |
//! | [`serve`] | query serving over any [`ReachIndex`](core::ReachIndex): bounded admission, worker pool, same-source batching, metrics |
//!
//! ## Storage backends
//!
//! Every index builds and queries identically on any
//! [`BlockDevice`](storage::BlockDevice); pick one with
//! [`StorageConfig`](storage::StorageConfig) (or hand a boxed device to the
//! `build_on` constructors directly):
//!
//! | backend | constructor | persists? | IO accounting | best for |
//! |---|---|---|---|---|
//! | [`SimDevice`](storage::SimDevice) | `StorageConfig::sim(page_size)` | no (memory) | yes | the paper's IO-count evaluation model |
//! | [`FileDevice`](storage::FileDevice) | `StorageConfig::file(path, page_size)` | yes (positioned file IO) | yes | persistence across runs, wall-clock benchmarks |
//! | [`MmapDevice`](storage::MmapDevice) | `StorageConfig::mmap(path, page_size)` | yes (write-through image) | yes | read-heavy query serving |
//!
//! The three backends share one accounting path, so a query costs *identical
//! counted IO* on all of them (asserted by `tests/backend_equivalence.rs`),
//! and files written by `FileDevice` and `MmapDevice` are interchangeable.
//!
//! ## Quickstart
//!
//! ```
//! use streach::prelude::*;
//!
//! // A tiny random-waypoint world.
//! let store = RwpConfig {
//!     env: Environment::square(500.0),
//!     num_objects: 30,
//!     horizon: 400,
//!     ..RwpConfig::default()
//! }
//! .generate(7);
//!
//! // Build both indexes.
//! let mut grid = ReachGrid::build(
//!     &store,
//!     GridParams { cell_size: 100.0, threshold: 25.0, ..GridParams::default() },
//! )
//! .expect("grid construction succeeds");
//! let dn = DnGraph::build(&store, 25.0);
//! let mr = MultiRes::build(&dn, &DEFAULT_LEVELS);
//! let mut graph = ReachGraph::build(&dn, &mr, GraphParams::default())
//!     .expect("graph construction succeeds");
//!
//! // Both agree on every query.
//! let q = Query::new(ObjectId(0), ObjectId(5), TimeInterval::new(10, 300));
//! let a = grid.evaluate(&q).expect("grid query evaluates");
//! let b = graph.evaluate(&q).expect("graph query evaluates");
//! assert_eq!(a.reachable(), b.reachable());
//! ```
//!
//! ## Query kinds
//!
//! Every index answers typed [`ReachRequest`](core::ReachRequest)s through
//! one `answer` entry point: plain reachability, uncertain contacts,
//! non-immediate contacts, decay-weighted reachability, and top-k ranked
//! reachability. The full semantics contract — what counts as a transfer,
//! how ties break, which index covers which kind — is `QUERIES.md` at the
//! repository root. The decay kinds (Strzheletska & Tsotras, PAPERS.md)
//! weight each path by `per_transfer^h · per_tick^(e − t1)` and either
//! gate on a threshold or rank the best-weighted objects:
//!
//! ```
//! use streach::prelude::*;
//!
//! // The paper's Figure 1 network again: 0-1 meet at tick 0, then
//! // {1,2,3} form one contact component at tick 1.
//! let text = "\
//! #! streach-trace v1 kind=events ids=numeric num_objects=4 horizon=4 origin=0
//! 0 1 0
//! 1 3 1
//! 2 3 1
//! 0 1 2 2
//! 2 3 2
//! ";
//! let trace = ContactTrace::parse(text, &IngestOptions::default()).expect("well-formed");
//! let dn = trace.build_dn();
//! let mr = MultiRes::build(&dn, &DEFAULT_LEVELS);
//! let mut graph = ReachGraph::build(&dn, &mr, GraphParams::default())
//!     .expect("graph construction succeeds");
//!
//! // One transfer delivers to object 3 at tick 1: weight 0.5 under pure
//! // per-transfer decay — clears θ = 0.3, and the witness rides along.
//! let model = DecayModel::per_transfer(0.5);
//! let a = graph
//!     .answer(&ReachRequest::decay(
//!         ObjectId(0), TimeInterval::new(0, 1), ObjectId(3), 0.3, model,
//!     ))
//!     .expect("decay request evaluates");
//! assert!(a.reachable());
//! assert_eq!((a.ranking[0].weight, a.ranking[0].arrival), (0.5, 1));
//!
//! // Top-3 reachable from object 0: itself excluded, object 1 leads
//! // (zero transfers), objects 2 and 3 tie and break by id.
//! let a = graph
//!     .answer(&ReachRequest::top_k_reachable(
//!         ObjectId(0), TimeInterval::new(0, 1), 3, model,
//!     ))
//!     .expect("top-k request evaluates");
//! let ids: Vec<u32> = a.ranking.iter().map(|r| r.object.0).collect();
//! assert_eq!(ids, vec![1, 2, 3]);
//! ```
//!
//! ## Ingesting a real contact trace
//!
//! Real contact datasets arrive as timestamped edge lists, not trajectories
//! (see `DATAFORMATS.md` for the format contract). The loader normalizes
//! them into a [`ContactTrace`](contact::ingest::ContactTrace) and the DN is
//! built *event-directly* — no trajectories, no spatial join:
//!
//! ```
//! use streach::prelude::*;
//!
//! // The paper's Figure 1 network as an inline edge list (u v t [duration]).
//! let text = "\
//! #! streach-trace v1 kind=events ids=numeric num_objects=4 horizon=4 origin=0
//! 0 1 0
//! 1 3 1
//! 2 3 1
//! 0 1 2 2
//! 2 3 2
//! ";
//! let trace = ContactTrace::parse(text, &IngestOptions::default())
//!     .expect("well-formed trace");
//! assert_eq!(trace.contacts().len(), 4); // the paper's c1..c4
//!
//! // Event-direct DN → ReachGraph, and a reachability query: is o4 (id 3)
//! // reachable from o1 (id 0) during [0, 1]? (Yes — Figure 1's example.)
//! let dn = trace.build_dn();
//! let mr = MultiRes::build(&dn, &DEFAULT_LEVELS);
//! let mut graph = ReachGraph::build(&dn, &mr, GraphParams::default())
//!     .expect("graph construction succeeds");
//! let q = Query::new(ObjectId(0), ObjectId(3), TimeInterval::new(0, 1));
//! assert!(graph.evaluate(&q).expect("query evaluates").reachable());
//!
//! // The reverse direction is unreachable: contacts are temporally ordered.
//! let q = Query::new(ObjectId(3), ObjectId(0), TimeInterval::new(0, 1));
//! assert!(!graph.evaluate(&q).expect("query evaluates").reachable());
//! ```
//!
//! ## Persistent ReachGraph on a real file
//!
//! ```
//! use streach::prelude::*;
//!
//! let store = RwpConfig {
//!     env: Environment::square(300.0),
//!     num_objects: 10,
//!     horizon: 100,
//!     ..RwpConfig::default()
//! }
//! .generate(3);
//! let dn = DnGraph::build(&store, 25.0);
//! let mr = MultiRes::build(&dn, &DEFAULT_LEVELS);
//! let params = GraphParams { page_size: 512, ..GraphParams::default() };
//!
//! let mut path = std::env::temp_dir();
//! path.push(format!("streach-doc-{}.pages", std::process::id()));
//! let cfg = StorageConfig::file(&path, params.page_size);
//!
//! let q = Query::new(ObjectId(0), ObjectId(5), TimeInterval::new(0, 99));
//! let verdict = {
//!     // Build on a real file…
//!     let device = cfg.create().expect("file device creates");
//!     let mut graph = ReachGraph::build_on(device, &dn, &mr, params)
//!         .expect("graph builds on a file");
//!     graph.evaluate(&q).expect("query evaluates").reachable()
//! }; // …drop the index entirely…
//!
//! // …and reopen it from the file alone: same answers, honest IO stats.
//! let mut reopened = ReachGraph::open(cfg.open().expect("file device reopens"))
//!     .expect("graph reopens from its metadata footer");
//! let again = reopened.evaluate(&q).expect("query evaluates");
//! assert_eq!(again.reachable(), verdict);
//! # let _ = std::fs::remove_file(&path);
//! ```

//! ## Memory-bounded index construction
//!
//! Building an index no longer requires the whole reduced DAG in memory:
//! [`StreamedDn`](contact::StreamedDn) stages the DN in a spillable pool
//! capped by a [`BuildBudget`](storage::BuildBudget), and every index
//! builder accepts it through the [`DnAccess`](contact::DnAccess) trait —
//! producing byte-identical pages to the in-memory build:
//!
//! ```
//! use streach::prelude::*;
//!
//! let trace = ContactTrace::parse(
//!     "#! streach-trace ids=numeric num_objects=4 horizon=4 origin=0\n\
//!      0 1 0\n1 3 1\n2 3 1\n0 1 2 2\n2 3 2\n",
//!     &IngestOptions::default(),
//! )
//! .expect("well-formed trace");
//!
//! // Stage the DN under a 4 KiB budget, spilling to a scratch device…
//! let mut dn = StreamedDn::from_contacts(
//!     trace.num_objects(),
//!     trace.horizon(),
//!     trace.contacts(),
//!     BuildBudget::bytes(4 << 10),
//!     StorageConfig::sim(256).create().expect("scratch device"),
//! );
//! // …and build exactly as with an in-memory DnGraph.
//! let mr = MultiRes::build(&mut dn, &DEFAULT_LEVELS);
//! let params = GraphParams { page_size: 256, ..GraphParams::default() };
//! let mut graph = ReachGraph::build_on(
//!     StorageConfig::sim(256).create().expect("device"),
//!     &mut dn,
//!     &mr,
//!     params,
//! )
//! .expect("budgeted build succeeds");
//!
//! let q = Query::new(ObjectId(0), ObjectId(3), TimeInterval::new(0, 1));
//! assert!(graph.evaluate(&q).expect("query evaluates").reachable());
//! ```

//! ## Live ingestion: appending to a running index
//!
//! Contact feeds are append-streams, not files. A
//! [`LiveIndex`](live::LiveIndex) accepts out-of-order appends into a
//! mutable delta, keeps every record durable in an
//! [`AppendLog`](live::AppendLog), answers queries that span the sealed /
//! live boundary, and — when the delta outgrows its budget — *compacts*:
//! the sealed base re-streams its DN, merges with the delta through the
//! memory-bounded streaming builders, and the result is byte-identical to
//! a batch rebuild over the full history:
//!
//! ```
//! use streach::prelude::*;
//!
//! let params = GraphParams { page_size: 256, ..GraphParams::default() };
//! let mut live = LiveConfig::graph(params, BuildBudget::bytes(64 << 10))
//!     .builder() // knobs: .lateness(..), .strict(), .delta_budget(..), .backend(..)
//!     .build(4 /* universe size */)
//!     .expect("live index creates");
//!
//! // The paper's Figure 1 contacts arrive as a stream (c1..c4)…
//! live.append(Contact::new(ObjectId(0), ObjectId(1), TimeInterval::new(0, 0)))
//!     .expect("append accepted");
//! live.append(Contact::new(ObjectId(1), ObjectId(3), TimeInterval::new(1, 1)))
//!     .expect("append accepted");
//!
//! // …and are queryable immediately: o4 reachable from o1 during [0, 1].
//! let q = Query::new(ObjectId(0), ObjectId(3), TimeInterval::new(0, 1));
//! assert!(live.evaluate_query(&q).expect("query evaluates").reachable());
//!
//! // Seal what we have, then keep appending: the next query spans the
//! // watermark — the base extracts the arrival frontier at the cut and
//! // the delta continues from there.
//! live.compact().expect("compaction succeeds");
//! live.append(Contact::new(ObjectId(2), ObjectId(3), TimeInterval::new(2, 2)))
//!     .expect("append accepted");
//! let q = Query::new(ObjectId(0), ObjectId(2), TimeInterval::new(0, 2));
//! assert!(live.evaluate_query(&q).expect("query evaluates").reachable());
//! ```

//! ## Concurrent serving: shared queries, background compaction
//!
//! [`LiveBuilder::serve`](live::LiveBuilder::serve) produces a
//! [`ConcurrentLive`](live::ConcurrentLive) instead: queries take `&self`
//! through the unified [`ReachIndex`](core::ReachIndex) trait (every index
//! in the workspace answers through it — single-threaded ones via the
//! [`Serial`](core::Serial) adapter),
//! appends are write-locked, and compaction runs on a background worker
//! that swaps in the rebuilt base as a new epoch without ever blocking
//! readers. Per-query counted IO stays exact under any interleaving
//! because each query reads the sealed base through a private
//! [`SharedDevice`](storage::SharedDevice) handle:
//!
//! ```
//! use streach::prelude::*;
//! use std::sync::Arc;
//!
//! let params = GraphParams { page_size: 256, ..GraphParams::default() };
//! let live = LiveConfig::graph(params, BuildBudget::bytes(64 << 10))
//!     .builder()
//!     .serve(4)
//!     .expect("serving index creates");
//! live.append(Contact::new(ObjectId(0), ObjectId(1), TimeInterval::new(0, 0)))
//!     .expect("append accepted");
//! live.append(Contact::new(ObjectId(1), ObjectId(3), TimeInterval::new(1, 1)))
//!     .expect("append accepted");
//! live.compact_now().expect("synchronous compaction");
//!
//! // Shared by Arc: any number of threads may query concurrently.
//! let shared: Arc<dyn ReachIndex> = Arc::new(live);
//! let handles: Vec<_> = (0..2)
//!     .map(|_| {
//!         let shared = Arc::clone(&shared);
//!         std::thread::spawn(move || {
//!             let a = shared
//!                 .query(ObjectId(0), TimeInterval::new(0, 1), ObjectId(3))
//!                 .expect("query evaluates");
//!             assert!(a.reachable());
//!         })
//!     })
//!     .collect();
//! for h in handles {
//!     h.join().expect("reader thread");
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use reach_baselines as baselines;
pub use reach_contact as contact;
pub use reach_core as core;
pub use reach_ext as ext;
pub use reach_graph as graph;
pub use reach_grid as grid;
pub use reach_live as live;
pub use reach_mobility as mobility;
pub use reach_obs as obs;
pub use reach_serve as serve;
pub use reach_storage as storage;
pub use reach_traj as traj;

/// Everything needed to build and query the two indexes.
pub mod prelude {
    pub use reach_baselines::{GrailDisk, GrailMem};
    pub use reach_contact::{
        ContactSource, ContactTrace, DnAccess, DnEventStream, DnGraph, DnSink, EdgeListSource,
        ErrorMode, IngestError, IngestOptions, IntervalSource, MultiRes, Oracle, StreamedDn,
        TraceKind, DEFAULT_LEVELS,
    };
    pub use reach_core::{
        Answer, Contact, ContactEvent, DecayModel, Environment, IndexError, Mbr, ObjectId, Point,
        Query, QueryKind, QueryOutcome, QueryResult, RankDirection, Ranked, ReachIndex,
        ReachRequest, ReachabilityIndex, Serial, Time, TimeInterval,
    };
    pub use reach_ext::{DecayOracle, NonImmediateIndex, UReachGraph, UncertainOracle};
    pub use reach_graph::{GraphParams, MemoryHn, ReachGraph, TraversalKind};
    pub use reach_grid::{GridParams, ReachGrid, Spj};
    pub use reach_live::{
        AppendLog, BaseKind, CompactionStats, ConcurrentLive, DeltaDn, GrailConfig, LiveBuilder,
        LiveConfig, LiveError, LiveIndex, LiveMetrics, LiveStats, LogRecovery, ShardCrashPoint,
        ShardRecovery, ShardedLive,
    };
    pub use reach_mobility::{RoadNetwork, RwpConfig, VehicleConfig, WorkloadConfig};
    pub use reach_obs::{
        FlightRecorder, Obs, ObsConfig, Registry, SlowQueryPolicy, SpanEvent, Tracer,
    };
    pub use reach_serve::{ServeConfig, ServeMetrics, Server, SubmitError, Ticket};
    pub use reach_storage::{
        BlockDevice, BuildBudget, CacheStats, DeviceDirectory, FileDevice, IoSampler, IoStats,
        MmapDevice, PageCache, Pager, SharedDevice, SimDevice, SpillStats, StorageBackend,
        StorageConfig,
    };
    pub use reach_traj::{Trajectory, TrajectoryStore};
}
